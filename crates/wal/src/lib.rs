//! # pardfs-wal
//!
//! **Trace-as-WAL durability** for pardfs servers: every committed epoch's
//! update batch is appended to a write-ahead log in the `pardfs-wal v1`
//! framing of [`pardfs_workload::wal`] (whose record bodies are valid
//! `pardfs-trace v1` segments — the log *is* a replayable trace), snapshot
//! **checkpoints** bound replay work, and [`recover_with`] (surfaced as
//! `MaintainerBuilder::recover` in the umbrella crate) rebuilds a serving
//! [`Server`] after a crash.
//!
//! ## The three pieces
//!
//! * [`WalWriter`] — a [`CommitLog`] implementation the server calls inside
//!   its commit path: append the epoch's framed record, `sync`, and (per
//!   [`CheckpointPolicy`]) take a checkpoint.
//! * The **checkpoint** — an atomic snapshot file serializing the
//!   maintainer's complete recoverable state: the *augmented* graph exactly
//!   as held (adjacency order included — DFS tree shape depends on it) and
//!   the maintained tree's parent array. Superseded WAL records are
//!   truncated once the checkpoint is durable.
//! * [`recover_with`] — load the latest checkpoint, rebuild the maintainer
//!   via a caller-supplied factory (the umbrella crate's
//!   `MaintainerBuilder::build_from_state` — this crate deliberately knows
//!   no backend), replay the WAL tail **verifying each record's logged tree
//!   fingerprint**, and resume a [`Server`] at the recovered epoch.
//!
//! ## Crash semantics
//!
//! Under the default [`SyncPolicy::EveryCommit`], a record is readable by
//! recovery as soon as its commit is acknowledged, and the server only
//! publishes an epoch after its record is logged — so no reader ever
//! observed an epoch recovery cannot reproduce. A crash mid-append leaves a
//! **torn tail**: recovery drops it and resumes at the last complete epoch.
//! Damage *before* intact records (interior corruption) is a hard error
//! naming the epoch — see [`pardfs_workload::wal`] for the discrimination
//! rule.
//!
//! [`SyncPolicy::EveryKCommits`] trades that guarantee for throughput by
//! grouping `fsync` across commits: records are still *written* (and framed
//! with per-record checksums) at every commit, but only forced to disk every
//! `k`-th commit. On a crash, **at most the last `k − 1` acknowledged
//! epochs may be lost** — they are the newest records, so recovery still
//! lands on a prefix of the acknowledged history, and a partially persisted
//! record is still a torn tail (dropped, never misread). Checkpoints always
//! `sync` regardless of policy, so a checkpoint is never ahead of the
//! durable WAL.
//!
//! ## Checkpoint formats
//!
//! Checkpoints are written in the `pardfs-snap` **v2** binary container
//! (`pardfs_graph::snap`, normative spec in `docs/FORMATS.md`): one section
//! table carrying the WAL header sections (`CHDR` epoch+fingerprint, `CBKD`
//! backend name) next to the graph's and the tree's flat-array sections,
//! under a single whole-file FNV-1a64 checksum, with the array payloads
//! 8-byte aligned so recovery can open the file as a borrowed
//! [`CheckpointView`] (validate once on the mapped bytes, materialize
//! arenas only when the backend factory runs). Files produced by older
//! builds — `pardfs-snap v1` binary or the line-oriented text format (magic
//! `pardfs-checkpoint v1`) — are still recovered: [`Checkpoint::parse_any`]
//! sniffs the leading magic bytes and dispatches to the right parser.
//!
//! ## Recovery state machine
//!
//! ```text
//! scan dir ─▶ latest checkpoint ─▶ parse graph+tree ─▶ factory(graph, tree)
//!                  │                                        │
//!                  ▼                                        ▼
//!             parse wal.log ──▶ drop torn tail ──▶ replay records > C
//!                  │                                        │ per record:
//!                  │ interior corruption?                   │ fingerprint
//!                  ▼                                        ▼ must match
//!              hard error                         Server::resume(dfs, E)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pardfs_api::{DfsMaintainer, RecoveryStats};
use pardfs_graph::snap::{put_u64, Cursor, SNAP_MAGIC, SNAP_MAGIC_V2};
use pardfs_graph::{Graph, GraphView, MappedSnapshot, SnapReader, SnapWriter, Update};
use pardfs_serve::{CommitLog, EpochRecord, Server};
use pardfs_tree::{TreeIndex, TreeView};
use pardfs_workload::wal::{fnv1a64, parse_wal, WalRecord, WAL_MAGIC};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The magic first line of every **legacy text** checkpoint file (still
/// parsed for back-compat; new checkpoints are `pardfs-snap v2` binary).
pub const CHECKPOINT_MAGIC: &str = "pardfs-checkpoint v1";

/// Section tag of the binary checkpoint header (epoch, fingerprint).
const SEC_CKPT_HEADER: [u8; 4] = *b"CHDR";
/// Section tag of the backend name (UTF-8 bytes).
const SEC_CKPT_BACKEND: [u8; 4] = *b"CBKD";

/// Name of the WAL file inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// When the [`WalWriter`] takes a checkpoint (and truncates the WAL records
/// the checkpoint supersedes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// After every `k` committed epochs (`k >= 1`).
    EveryKEpochs(u64),
    /// Once the WAL has grown past `b` bytes since the last checkpoint.
    EveryBytes(u64),
    /// Only when [`Server::force_checkpoint`] is called.
    Manual,
}

impl CheckpointPolicy {
    fn due(&self, epochs_since: u64, bytes_since: u64) -> bool {
        match *self {
            CheckpointPolicy::EveryKEpochs(k) => epochs_since >= k.max(1),
            CheckpointPolicy::EveryBytes(b) => bytes_since >= b,
            CheckpointPolicy::Manual => false,
        }
    }
}

/// How often the [`WalWriter`] forces committed records to disk.
///
/// See the [module docs](self) for the exact loss bound: with
/// `EveryKCommits(k)` a crash loses **at most the last `k − 1` acknowledged
/// epochs**, always a suffix, never a torn/interior read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `sync_data` after every commit (no acknowledged epoch is ever lost).
    #[default]
    EveryCommit,
    /// `sync_data` on every `k`-th commit (`k >= 1`; `k == 1` is equivalent
    /// to [`SyncPolicy::EveryCommit`]).
    EveryKCommits(u64),
}

impl SyncPolicy {
    fn due(&self, commits_since_sync: u64) -> bool {
        match *self {
            SyncPolicy::EveryCommit => true,
            SyncPolicy::EveryKCommits(k) => commits_since_sync >= k.max(1),
        }
    }
}

/// Where and how a server's commits are made durable.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `checkpoint-*.ckpt` (created by
    /// [`DurabilityConfig::attach`] if absent).
    pub dir: PathBuf,
    /// Checkpoint cadence.
    pub policy: CheckpointPolicy,
    /// Fsync cadence for committed records.
    pub sync: SyncPolicy,
}

impl DurabilityConfig {
    /// Durability in `dir` with a default policy (checkpoint every 8
    /// epochs, `fsync` every commit).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            policy: CheckpointPolicy::EveryKEpochs(8),
            sync: SyncPolicy::EveryCommit,
        }
    }

    /// Select the checkpoint cadence.
    pub fn policy(mut self, policy: CheckpointPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select the fsync cadence (see [`SyncPolicy`] for the loss bound).
    pub fn sync_policy(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Make `server` durable: create the directory, take an **initial
    /// checkpoint** of its current state (so recovery always has a base),
    /// and attach a [`WalWriter`] logging every subsequent commit.
    ///
    /// Errors if the directory already holds a WAL or checkpoints — that
    /// state belongs to a previous server; use [`recover_with`] instead of
    /// silently overwriting it.
    pub fn attach(&self, server: &mut Server) -> Result<(), String> {
        if self.dir.join(WAL_FILE).exists() || latest_checkpoint_path(&self.dir)?.is_some() {
            return Err(format!(
                "durability dir {} already holds a WAL/checkpoints — recover from it instead of overwriting",
                self.dir.display()
            ));
        }
        fs::create_dir_all(&self.dir)
            .map_err(|e| format!("creating {}: {e}", self.dir.display()))?;
        let writer = WalWriter::create(self.dir.clone(), self.policy, self.sync)?;
        server.set_commit_log(Box::new(writer));
        // The initial checkpoint makes the pre-WAL state durable.
        server.force_checkpoint()
    }
}

/// A parsed checkpoint file: the complete recoverable state of a maintainer
/// at one epoch.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Epoch the state was captured at.
    pub epoch: u64,
    /// Backend name of the maintainer that produced it (informational —
    /// recovery may rebuild with any backend via its factory).
    pub backend: String,
    /// Tree fingerprint at capture time (verified after load).
    pub fingerprint: u64,
    /// The augmented graph, exactly as held.
    pub graph: Graph,
    /// The maintained DFS tree.
    pub tree: TreeIndex,
}

impl Checkpoint {
    /// Capture a maintainer's recoverable state at `epoch`.
    pub fn capture(epoch: u64, state: &dyn DfsMaintainer) -> Checkpoint {
        Checkpoint {
            epoch,
            backend: state.backend_name().to_string(),
            fingerprint: state.tree().fingerprint(),
            graph: state.augmented_graph().clone(),
            tree: state.tree().clone(),
        }
    }

    /// Render the checkpoint as a `pardfs-snap` **v2** binary container:
    /// the WAL header sections (`CHDR`, `CBKD`) composed with the graph's
    /// and the tree's flat-array sections under one whole-file checksum,
    /// with the array payloads 8-byte aligned so recovery (and any other
    /// reader) can serve the file as a borrowed [`CheckpointView`] without
    /// materializing. This is the format [`WalWriter`] writes;
    /// [`Checkpoint::parse_any`] reads it, the v1 container and the legacy
    /// text format alike.
    pub fn render_binary(&self) -> Vec<u8> {
        self.render_into(SnapWriter::v2())
    }

    /// Render the checkpoint as a `pardfs-snap` **v1** (packed) container —
    /// the format PR 8 builds wrote. Kept as a real producer so the
    /// cross-version differential tests and the E16 open-latency benchmark
    /// compare against genuine v1 bytes, not a simulation.
    pub fn render_binary_v1(&self) -> Vec<u8> {
        self.render_into(SnapWriter::new())
    }

    fn render_into(&self, mut w: SnapWriter) -> Vec<u8> {
        let hdr = w.section_aligned(SEC_CKPT_HEADER, 8);
        put_u64(hdr, self.epoch);
        put_u64(hdr, self.fingerprint);
        w.section(SEC_CKPT_BACKEND)
            .extend_from_slice(self.backend.as_bytes());
        self.graph.write_snap_sections(&mut w);
        self.tree.write_snap_sections(&mut w);
        w.finish()
    }

    /// Parse a binary checkpoint produced by [`Checkpoint::render_binary`],
    /// with the same validation as the text parser: container framing,
    /// both snapshot sections, and the recorded tree fingerprint.
    pub fn parse_binary(bytes: &[u8]) -> Result<Checkpoint, String> {
        let r = SnapReader::parse(bytes)?;
        let mut hdr = Cursor::new(SEC_CKPT_HEADER, r.section(SEC_CKPT_HEADER)?);
        let epoch = hdr.u64()?;
        let fingerprint = hdr.u64()?;
        hdr.finish()?;
        let backend = std::str::from_utf8(r.section(SEC_CKPT_BACKEND)?)
            .map_err(|_| "checkpoint backend name is not UTF-8".to_string())?
            .to_string();
        let graph = Graph::read_snap_sections(&r)?;
        let tree = TreeIndex::read_snap_sections(&r)?;
        if tree.fingerprint() != fingerprint {
            return Err(format!(
                "checkpoint for epoch {epoch}: loaded tree fingerprint {:016x} disagrees with recorded {fingerprint:016x}",
                tree.fingerprint()
            ));
        }
        Ok(Checkpoint {
            epoch,
            backend,
            fingerprint,
            graph,
            tree,
        })
    }

    /// Parse a checkpoint file in any supported format: `pardfs-snap` v2 or
    /// v1 binary (sniffed by their leading magic bytes) or the legacy
    /// line-oriented text format older builds wrote.
    pub fn parse_any(bytes: &[u8]) -> Result<Checkpoint, String> {
        if bytes.starts_with(&SNAP_MAGIC) || bytes.starts_with(&SNAP_MAGIC_V2) {
            return Self::parse_binary(bytes);
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|_| "checkpoint is neither pardfs-snap binary nor UTF-8 text".to_string())?;
        Self::parse(text)
    }

    /// Render the checkpoint in the **legacy text** format: header lines,
    /// the graph and tree snapshot sections, and a whole-file checksum line.
    /// Kept for format documentation and back-compat tests; new checkpoints
    /// are written with [`Checkpoint::render_binary`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{CHECKPOINT_MAGIC}");
        let _ = writeln!(out, "epoch {}", self.epoch);
        let _ = writeln!(out, "backend {}", self.backend);
        let _ = writeln!(out, "fingerprint {:016x}", self.fingerprint);
        out.push_str(&self.graph.render_snapshot());
        out.push_str(&self.tree.render_snapshot());
        let _ = writeln!(out, "checksum {:016x}", fnv1a64(out.as_bytes()));
        out
    }

    /// Parse a checkpoint file, verifying the checksum and both snapshot
    /// sections. A checkpoint is written atomically (tmp + rename), so any
    /// damage here is storage corruption, never a torn write — callers
    /// treat an error as fatal.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let (payload, tail) = text
            .rsplit_once("checksum ")
            .ok_or_else(|| "checkpoint missing its checksum line".to_string())?;
        let recorded = u64::from_str_radix(tail.trim_end(), 16)
            .map_err(|_| format!("bad checkpoint checksum value `{}`", tail.trim_end()))?;
        if fnv1a64(payload.as_bytes()) != recorded {
            return Err("checkpoint checksum mismatch (file is corrupt)".to_string());
        }
        let mut lines = payload.lines();
        let magic = lines.next().unwrap_or_default();
        if magic != CHECKPOINT_MAGIC {
            return Err(format!(
                "not a pardfs checkpoint (expected `{CHECKPOINT_MAGIC}`, got `{magic}`)"
            ));
        }
        let epoch: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("epoch "))
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| "checkpoint missing `epoch <n>` line".to_string())?;
        let backend = lines
            .next()
            .and_then(|l| l.strip_prefix("backend "))
            .ok_or_else(|| "checkpoint missing `backend <name>` line".to_string())?
            .to_string();
        let fingerprint = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| "checkpoint missing `fingerprint <hex16>` line".to_string())?;
        // The two snapshot sections are delimited by their own end markers.
        let rest = &payload[payload
            .find("\ngraph ")
            .ok_or_else(|| "checkpoint missing its graph section".to_string())?
            + 1..];
        let graph_end = rest
            .find("graph-end\n")
            .ok_or_else(|| "checkpoint graph section missing `graph-end`".to_string())?
            + "graph-end\n".len();
        let graph = Graph::parse_snapshot(&rest[..graph_end])?;
        let tree = TreeIndex::parse_snapshot(&rest[graph_end..])?;
        if tree.fingerprint() != fingerprint {
            return Err(format!(
                "checkpoint for epoch {epoch}: loaded tree fingerprint {:016x} disagrees with recorded {fingerprint:016x}",
                tree.fingerprint()
            ));
        }
        Ok(Checkpoint {
            epoch,
            backend,
            fingerprint,
            graph,
            tree,
        })
    }
}

/// A **borrowed, zero-copy view** of a `pardfs-snap v2` binary checkpoint:
/// the header fields plus [`GraphView`]/[`TreeView`]s over the mapped (or
/// aligned in-memory) bytes.
///
/// Parsing validates everything exactly once — container framing and
/// checksum, then the same graph/tree representation invariants the
/// materializing [`Checkpoint::parse_binary`] enforces (shared validator
/// code) — and thereafter every read borrows the underlying buffer. Nothing
/// is copied until [`CheckpointView::materialize`], which is deliberately
/// deferred to the moment a backend's `from_state` resume actually needs
/// owned arenas. The recorded tree fingerprint is verified there (the view
/// itself cannot compute a pre-order fingerprint without building the
/// index); until then the whole-file checksum vouches for the bytes.
///
/// # Examples
///
/// ```
/// use pardfs_wal::{Checkpoint, CheckpointView};
/// use pardfs_graph::Graph;
/// use pardfs_tree::{RootedTree, TreeIndex};
///
/// # fn demo() -> Result<(), String> {
/// let mut g = Graph::new(2);
/// g.insert_edge(0, 1);
/// let mut t = RootedTree::new(2, 0);
/// t.set_parent(1, 0);
/// let tree = TreeIndex::build(&t);
/// let ckpt = Checkpoint {
///     epoch: 9,
///     backend: "sequential".into(),
///     fingerprint: tree.fingerprint(),
///     graph: g,
///     tree,
/// };
/// let bytes = ckpt.render_binary(); // v2 container
/// let view = CheckpointView::parse(&bytes)?;
/// assert_eq!(view.epoch, 9);
/// assert_eq!(view.backend(), "sequential");
/// assert_eq!(view.graph().neighbours(1), &[0]); // borrowed from `bytes`
/// let (graph, tree) = view.materialize()?;       // copies, exactly once
/// assert_eq!(graph, ckpt.graph);
/// # Ok(()) }
/// # demo().unwrap();
/// ```
#[derive(Debug)]
pub struct CheckpointView<'a> {
    /// Epoch the state was captured at.
    pub epoch: u64,
    /// Tree fingerprint recorded at capture time (verified on
    /// [`CheckpointView::materialize`]).
    pub fingerprint: u64,
    backend: &'a str,
    graph: GraphView<'a>,
    tree: TreeView<'a>,
}

impl<'a> CheckpointView<'a> {
    /// Validate a v2 binary checkpoint and borrow its state. Rejects v1
    /// containers (their packed payloads are not alignment-safe to borrow —
    /// use [`Checkpoint::parse_any`]) with an error saying so.
    pub fn parse(bytes: &'a [u8]) -> Result<CheckpointView<'a>, String> {
        let r = SnapReader::parse(bytes)?;
        if r.version() < 2 {
            return Err(
                "zero-copy checkpoint views need a pardfs-snap v2 container; \
                 parse v1 checkpoints with the materializing parser"
                    .to_string(),
            );
        }
        let mut hdr = Cursor::new(SEC_CKPT_HEADER, r.section(SEC_CKPT_HEADER)?);
        let epoch = hdr.u64()?;
        let fingerprint = hdr.u64()?;
        hdr.finish()?;
        let backend = std::str::from_utf8(r.section(SEC_CKPT_BACKEND)?)
            .map_err(|_| "checkpoint backend name is not UTF-8".to_string())?;
        let graph = GraphView::parse(&r)?;
        let tree = TreeView::parse(&r)?;
        Ok(CheckpointView {
            epoch,
            fingerprint,
            backend,
            graph,
            tree,
        })
    }

    /// Backend name of the maintainer that produced the checkpoint.
    pub fn backend(&self) -> &'a str {
        self.backend
    }

    /// The augmented graph, served in place.
    pub fn graph(&self) -> &GraphView<'a> {
        &self.graph
    }

    /// The maintained DFS tree, served in place.
    pub fn tree(&self) -> &TreeView<'a> {
        &self.tree
    }

    /// Materialize owned state for a backend resume — the single copy point
    /// of the view-based recovery path. Validation is **not** repeated (it
    /// ran at [`CheckpointView::parse`] time); the recorded tree fingerprint
    /// is verified against the rebuilt index here, exactly as
    /// [`Checkpoint::parse_binary`] does.
    pub fn materialize(&self) -> Result<(Graph, TreeIndex), String> {
        let graph = self.graph.to_graph();
        let tree = self.tree.to_index();
        if tree.fingerprint() != self.fingerprint {
            return Err(format!(
                "checkpoint for epoch {}: loaded tree fingerprint {:016x} disagrees with recorded {:016x}",
                self.epoch,
                tree.fingerprint(),
                self.fingerprint
            ));
        }
        Ok((graph, tree))
    }
}

fn checkpoint_file_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:016x}.ckpt")
}

/// The highest-epoch `checkpoint-*.ckpt` in `dir`, if any.
fn latest_checkpoint_path(dir: &Path) -> Result<Option<(u64, PathBuf)>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(None), // dir absent → no checkpoints
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| format!("listing {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(hex) = name
            .to_str()
            .and_then(|n| n.strip_prefix("checkpoint-"))
            .and_then(|n| n.strip_suffix(".ckpt"))
        else {
            continue;
        };
        let Ok(epoch) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
            best = Some((epoch, entry.path()));
        }
    }
    Ok(best)
}

/// The durability sink: appends each committed epoch to `wal.log` with an
/// explicit `sync` per group commit, and checkpoints per policy. Attach via
/// [`DurabilityConfig::attach`]; recovery reattaches one automatically.
pub struct WalWriter {
    dir: PathBuf,
    file: fs::File,
    policy: CheckpointPolicy,
    sync: SyncPolicy,
    last_checkpoint_epoch: u64,
    epochs_since_checkpoint: u64,
    bytes_since_checkpoint: u64,
    commits_since_sync: u64,
    syncs: u64,
}

impl WalWriter {
    /// Create a fresh WAL (magic line only) in `dir`.
    fn create(
        dir: PathBuf,
        policy: CheckpointPolicy,
        sync: SyncPolicy,
    ) -> Result<WalWriter, String> {
        let path = dir.join(WAL_FILE);
        let mut file =
            fs::File::create(&path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        file.write_all(format!("{WAL_MAGIC}\n").as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("initialising {}: {e}", path.display()))?;
        Ok(WalWriter {
            dir,
            file,
            policy,
            sync,
            last_checkpoint_epoch: 0,
            epochs_since_checkpoint: 0,
            bytes_since_checkpoint: 0,
            commits_since_sync: 0,
            syncs: 0,
        })
    }

    /// Reopen an existing WAL for append after recovery. `valid_len` is the
    /// verified prefix length — anything after it (a torn tail) is cut off.
    #[allow(clippy::too_many_arguments)]
    fn reattach(
        dir: PathBuf,
        policy: CheckpointPolicy,
        sync: SyncPolicy,
        checkpoint_epoch: u64,
        epochs_since: u64,
        bytes_since: u64,
        valid_len: u64,
    ) -> Result<WalWriter, String> {
        let path = dir.join(WAL_FILE);
        let file = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("reopening {}: {e}", path.display()))?;
        file.set_len(valid_len)
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("truncating torn tail of {}: {e}", path.display()))?;
        Ok(WalWriter {
            dir,
            file,
            policy,
            sync,
            last_checkpoint_epoch: checkpoint_epoch,
            epochs_since_checkpoint: epochs_since,
            bytes_since_checkpoint: bytes_since,
            commits_since_sync: 0,
            syncs: 0,
        })
    }

    /// Epoch of the most recent checkpoint.
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint_epoch
    }

    /// Number of `sync_data` calls [`CommitLog::log_commit`] has issued over
    /// this writer's lifetime — the observable for fsync batching: with
    /// [`SyncPolicy::EveryKCommits`] this grows by one per `k` commits
    /// instead of one per commit.
    pub fn syncs_performed(&self) -> u64 {
        self.syncs
    }

    fn take_checkpoint(
        &mut self,
        record: &EpochRecord,
        state: &dyn DfsMaintainer,
    ) -> Result<(), String> {
        let ckpt = Checkpoint::capture(record.epoch, state);
        debug_assert_eq!(
            ckpt.fingerprint, record.fingerprint,
            "the maintainer and the epoch record agree on the tree"
        );
        let final_path = self.dir.join(checkpoint_file_name(record.epoch));
        let tmp_path = self.dir.join("checkpoint.tmp");
        let mut tmp = fs::File::create(&tmp_path)
            .map_err(|e| format!("creating {}: {e}", tmp_path.display()))?;
        tmp.write_all(&ckpt.render_binary())
            .and_then(|()| tmp.sync_all())
            .map_err(|e| format!("writing {}: {e}", tmp_path.display()))?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| format!("publishing {}: {e}", final_path.display()))?;
        // The checkpoint is durable: every logged record it covers is now
        // superseded — restart the WAL at its magic line.
        let path = self.dir.join(WAL_FILE);
        let mut file =
            fs::File::create(&path).map_err(|e| format!("truncating {}: {e}", path.display()))?;
        file.write_all(format!("{WAL_MAGIC}\n").as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("restarting {}: {e}", path.display()))?;
        self.file = file;
        // Older checkpoints are garbage now (best-effort removal).
        let superseded = latest_checkpoint_path(&self.dir)?;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let p = entry.path();
                let is_latest = superseded.as_ref().is_some_and(|(_, best)| *best == p);
                let is_ckpt = p
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("checkpoint-") && n.ends_with(".ckpt"));
                if is_ckpt && !is_latest {
                    let _ = fs::remove_file(&p);
                }
            }
        }
        self.last_checkpoint_epoch = record.epoch;
        self.epochs_since_checkpoint = 0;
        self.bytes_since_checkpoint = 0;
        // The restarted WAL was just synced; nothing is pending.
        self.commits_since_sync = 0;
        Ok(())
    }
}

impl CommitLog for WalWriter {
    fn log_commit(
        &mut self,
        record: &EpochRecord,
        updates: &[Update],
        state: &dyn DfsMaintainer,
    ) -> Result<(), String> {
        let wal_record = WalRecord {
            epoch: record.epoch,
            updates: updates.to_vec(),
            fingerprint: record.fingerprint,
        };
        let text = wal_record.render();
        self.file
            .write_all(text.as_bytes())
            .map_err(|e| format!("appending epoch {} to the WAL: {e}", record.epoch))?;
        self.commits_since_sync += 1;
        if self.sync.due(self.commits_since_sync) {
            self.file
                .sync_data()
                .map_err(|e| format!("syncing epoch {} to the WAL: {e}", record.epoch))?;
            self.commits_since_sync = 0;
            self.syncs += 1;
        }
        self.epochs_since_checkpoint += 1;
        self.bytes_since_checkpoint += text.len() as u64;
        if self
            .policy
            .due(self.epochs_since_checkpoint, self.bytes_since_checkpoint)
        {
            self.take_checkpoint(record, state)?;
        }
        Ok(())
    }

    fn checkpoint(
        &mut self,
        record: &EpochRecord,
        state: &dyn DfsMaintainer,
    ) -> Result<(), String> {
        self.take_checkpoint(record, state)
    }
}

/// A recovered server plus the [`RecoveryStats`] describing how it got
/// there.
pub struct Recovered {
    /// The server, resumed at the recovered epoch with a fresh [`WalWriter`]
    /// attached (subsequent commits keep logging to the same directory).
    pub server: Server,
    /// What recovery did.
    pub stats: RecoveryStats,
}

/// Recover a server from a durability directory.
///
/// `factory` rebuilds a maintainer from the checkpointed state — the
/// augmented graph (internal ids, exactly as held) and the maintained tree.
/// The umbrella crate's `MaintainerBuilder::build_from_state` is the usual
/// factory; this crate takes a closure so it needs no backend dependencies.
///
/// After the factory returns, the WAL tail (records past the checkpoint
/// epoch) is replayed batch by batch, and after **each** batch the rebuilt
/// maintainer's tree fingerprint must equal the logged one — a divergence
/// means the recovered trajectory is not the crashed one, and recovery
/// fails rather than serve silently different state. A torn final record is
/// dropped (recovering to the last complete epoch); interior corruption is
/// a hard error naming the epoch.
pub fn recover_with(
    config: &DurabilityConfig,
    factory: impl FnOnce(Graph, TreeIndex) -> Result<Box<dyn DfsMaintainer>, String>,
) -> Result<Recovered, String> {
    let (_, ckpt_path) = latest_checkpoint_path(&config.dir)?.ok_or_else(|| {
        format!(
            "no checkpoint in {} — nothing to recover",
            config.dir.display()
        )
    })?;
    // Open the checkpoint as a mapped, borrowed view when it is a v2
    // container: one validation pass over the mapped bytes, **no** array
    // materialization until the backend factory actually needs owned state.
    // v1-binary and legacy-text checkpoints take the copying parser.
    let mapped = MappedSnapshot::open(&ckpt_path)
        .map_err(|e| format!("opening {}: {e}", ckpt_path.display()))?;
    let ckpt_bytes = mapped.bytes();
    let (ckpt_epoch, ckpt_fingerprint, graph, tree) = if ckpt_bytes.starts_with(&SNAP_MAGIC_V2) {
        let view = CheckpointView::parse(ckpt_bytes)
            .map_err(|e| format!("{}: {e}", ckpt_path.display()))?;
        let (graph, tree) = view
            .materialize()
            .map_err(|e| format!("{}: {e}", ckpt_path.display()))?;
        (view.epoch, view.fingerprint, graph, tree)
    } else {
        let ckpt = Checkpoint::parse_any(ckpt_bytes)
            .map_err(|e| format!("{}: {e}", ckpt_path.display()))?;
        (ckpt.epoch, ckpt.fingerprint, ckpt.graph, ckpt.tree)
    };

    let wal_path = config.dir.join(WAL_FILE);
    let wal_raw =
        fs::read(&wal_path).map_err(|e| format!("reading {}: {e}", wal_path.display()))?;
    let wal_bytes = wal_raw.len() as u64;
    // The format is pure ASCII; non-UTF-8 bytes can only be corruption, and
    // the lossy replacement shifts frame lengths so the damaged record fails
    // its checksum and is handled by the torn/corrupt discrimination below.
    let wal_text = String::from_utf8_lossy(&wal_raw);
    let parsed = parse_wal(&wal_text).map_err(|e| e.to_string())?;

    let mut dfs = factory(graph, tree)?;
    if dfs.tree().fingerprint() != ckpt_fingerprint {
        return Err(format!(
            "rebuilt maintainer's tree fingerprint {:016x} disagrees with the checkpoint's {:016x}",
            dfs.tree().fingerprint(),
            ckpt_fingerprint
        ));
    }

    let mut stats = RecoveryStats {
        checkpoint_epoch: ckpt_epoch,
        recovered_epoch: ckpt_epoch,
        records_replayed: 0,
        updates_replayed: 0,
        torn_records_dropped: parsed.torn_records_dropped,
        wal_bytes,
    };
    let mut bytes_since = 0u64;
    for record in parsed.records.iter().filter(|r| r.epoch > ckpt_epoch) {
        if record.epoch != stats.recovered_epoch + 1 {
            return Err(format!(
                "WAL resumes at epoch {} but recovery is at epoch {} — a record is missing",
                record.epoch, stats.recovered_epoch
            ));
        }
        dfs.apply_batch(&record.updates);
        let got = dfs.tree().fingerprint();
        if got != record.fingerprint {
            return Err(format!(
                "replay diverged at epoch {}: tree fingerprint {got:016x} != logged {:016x}",
                record.epoch, record.fingerprint
            ));
        }
        stats.recovered_epoch = record.epoch;
        stats.records_replayed += 1;
        stats.updates_replayed += record.updates.len() as u64;
        bytes_since += record.render().len() as u64;
    }

    let writer = WalWriter::reattach(
        config.dir.clone(),
        config.policy,
        config.sync,
        ckpt_epoch,
        stats.records_replayed,
        bytes_since,
        wal_bytes - parsed.torn_bytes_dropped,
    )?;
    let mut server = Server::resume(dfs, stats.recovered_epoch);
    server.set_commit_log(Box::new(writer));
    Ok(Recovered { server, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardfs_core::DynamicDfs;
    use pardfs_graph::generators;
    use pardfs_seq::AugmentedGraph;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pardfs-wal-test-{}-{tag}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn parallel_factory(graph: Graph, tree: TreeIndex) -> Result<Box<dyn DfsMaintainer>, String> {
        let aug = AugmentedGraph::from_internal(graph)?;
        Ok(Box::new(DynamicDfs::from_state(
            aug,
            tree,
            pardfs_core::Strategy::Phased,
            pardfs_api::RebuildPolicy::default(),
        )))
    }

    fn durable_server(dir: &Path, policy: CheckpointPolicy) -> (Server, DurabilityConfig) {
        let g = generators::grid(4, 4);
        let mut server = Server::new(Box::new(DynamicDfs::new(&g)));
        let config = DurabilityConfig::new(dir).policy(policy);
        config.attach(&mut server).expect("attach to empty dir");
        (server, config)
    }

    fn commit(server: &mut Server, updates: Vec<Update>) -> u64 {
        let writer = server.write_handle();
        writer.submit(updates);
        server
            .commit()
            .expect("queued batch commits")
            .record
            .fingerprint
    }

    #[test]
    fn attach_log_recover_round_trip() {
        let dir = scratch_dir("roundtrip");
        let (mut server, config) = durable_server(&dir, CheckpointPolicy::Manual);
        commit(&mut server, vec![Update::DeleteEdge(0, 1)]);
        commit(&mut server, vec![Update::InsertEdge(0, 15)]);
        let live_fp = commit(
            &mut server,
            vec![Update::InsertVertex { edges: vec![2, 9] }],
        );
        drop(server); // "crash" after clean syncs

        let recovered = recover_with(&config, parallel_factory).expect("recovery succeeds");
        assert_eq!(recovered.stats.checkpoint_epoch, 0);
        assert_eq!(recovered.stats.recovered_epoch, 3);
        assert_eq!(recovered.stats.records_replayed, 3);
        assert_eq!(recovered.stats.updates_replayed, 3);
        assert_eq!(recovered.stats.torn_records_dropped, 0);
        let server = recovered.server;
        assert_eq!(server.maintainer().tree().fingerprint(), live_fp);
        assert_eq!(server.read_handle().epoch(), 3);
        assert_eq!(server.read_handle().recorded_fingerprint(3), Some(live_fp));
        // The recovered server keeps logging: another commit + recovery.
        let mut server = server;
        let fp4 = commit(&mut server, vec![Update::DeleteEdge(4, 5)]);
        drop(server);
        let again = recover_with(&config, parallel_factory).expect("second recovery");
        assert_eq!(again.stats.recovered_epoch, 4);
        assert_eq!(again.server.maintainer().tree().fingerprint(), fp4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_bounds_replay() {
        let dir = scratch_dir("ckpt");
        let (mut server, config) = durable_server(&dir, CheckpointPolicy::EveryKEpochs(2));
        for i in 0..5u32 {
            commit(&mut server, vec![Update::DeleteEdge(i, i + 1)]);
        }
        drop(server);
        // Epochs 2 and 4 took checkpoints; only epoch 5 remains in the WAL.
        let wal = fs::read_to_string(dir.join(WAL_FILE)).unwrap();
        assert_eq!(wal.matches("record ").count(), 1, "wal: {wal:?}");
        assert!(dir.join(checkpoint_file_name(4)).exists());
        assert!(
            !dir.join(checkpoint_file_name(2)).exists(),
            "superseded checkpoint is removed"
        );
        let recovered = recover_with(&config, parallel_factory).expect("recovery succeeds");
        assert_eq!(recovered.stats.checkpoint_epoch, 4);
        assert_eq!(recovered.stats.records_replayed, 1);
        assert_eq!(recovered.stats.recovered_epoch, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_refuses_a_populated_dir() {
        let dir = scratch_dir("refuse");
        let (server, config) = durable_server(&dir, CheckpointPolicy::Manual);
        drop(server);
        let g = generators::path(4);
        let mut fresh = Server::new(Box::new(DynamicDfs::new(&g)));
        let err = config.attach(&mut fresh).expect_err("must refuse");
        assert!(err.contains("recover"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovering_an_empty_dir_is_an_error() {
        let dir = scratch_dir("empty");
        let err = match recover_with(&DurabilityConfig::new(&dir), parallel_factory) {
            Err(e) => e,
            Ok(_) => panic!("recovering an empty dir must fail"),
        };
        assert!(err.contains("no checkpoint"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_checkpoint_round_trips_and_rejects_corruption() {
        let g = generators::broom(6, 6);
        let dfs = DynamicDfs::new(&g);
        let ckpt = Checkpoint::capture(9, &dfs);
        let bytes = ckpt.render_binary();
        let parsed = Checkpoint::parse_any(&bytes).expect("own binary checkpoint parses");
        assert_eq!(parsed.epoch, ckpt.epoch);
        assert_eq!(parsed.backend, ckpt.backend);
        assert_eq!(parsed.fingerprint, ckpt.fingerprint);
        assert_eq!(parsed.graph, ckpt.graph);
        parsed
            .tree
            .structural_eq(&ckpt.tree)
            .expect("identical tree");
        assert_eq!(parsed.render_binary(), bytes, "byte-stable round trip");
        // Any single-byte flip breaks the whole-file checksum.
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 1;
        assert!(Checkpoint::parse_any(&bad)
            .expect_err("corrupt binary checkpoint rejected")
            .contains("checksum"));
        assert!(Checkpoint::parse_any(&bytes[..bytes.len() - 7]).is_err());
    }

    #[test]
    fn legacy_text_checkpoints_still_recover() {
        // Simulate a durability directory written by an older build: a
        // text-format checkpoint plus an empty (magic-only) WAL.
        let dir = scratch_dir("legacy");
        let g = generators::grid(4, 4);
        let dfs = DynamicDfs::new(&g);
        let ckpt = Checkpoint::capture(0, &dfs);
        fs::write(dir.join(checkpoint_file_name(0)), ckpt.render()).unwrap();
        fs::write(dir.join(WAL_FILE), format!("{WAL_MAGIC}\n")).unwrap();

        let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::Manual);
        let recovered = recover_with(&config, parallel_factory).expect("legacy dir recovers");
        assert_eq!(recovered.stats.checkpoint_epoch, 0);
        assert_eq!(
            recovered.server.maintainer().tree().fingerprint(),
            ckpt.fingerprint
        );
        // The recovered server commits and recovers again — the *new*
        // checkpoint it eventually writes is binary, and both formats
        // coexist in one history.
        let mut server = recovered.server;
        let fp = commit(&mut server, vec![Update::DeleteEdge(0, 1)]);
        server.force_checkpoint().expect("manual checkpoint");
        drop(server);
        let ckpt_bytes = fs::read(dir.join(checkpoint_file_name(1))).unwrap();
        assert!(
            ckpt_bytes.starts_with(&SNAP_MAGIC_V2),
            "new checkpoints are v2 binary"
        );
        let again = recover_with(&config, parallel_factory).expect("recovers from binary");
        assert_eq!(again.server.maintainer().tree().fingerprint(), fp);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_policy_batches_fsyncs() {
        let g = generators::grid(4, 4);
        let dfs = DynamicDfs::new(&g);
        let fabricate = |epoch: u64| EpochRecord {
            epoch,
            updates: 0,
            submissions: 0,
            fingerprint: dfs.tree().fingerprint(),
            num_vertices: dfs.augmented_graph().num_vertices(),
            num_edges: dfs.augmented_graph().num_edges(),
            rollup: Default::default(),
            micros: 0,
        };
        let drive = |sync: SyncPolicy, commits: u64| -> u64 {
            let dir = scratch_dir("syncs");
            let mut w = WalWriter::create(dir.clone(), CheckpointPolicy::Manual, sync).unwrap();
            for e in 1..=commits {
                w.log_commit(&fabricate(e), &[], &dfs).unwrap();
            }
            let syncs = w.syncs_performed();
            drop(w);
            let _ = fs::remove_dir_all(&dir);
            syncs
        };
        assert_eq!(drive(SyncPolicy::EveryCommit, 4), 4);
        assert_eq!(
            drive(SyncPolicy::EveryKCommits(1), 4),
            4,
            "k=1 ≡ EveryCommit"
        );
        assert_eq!(drive(SyncPolicy::EveryKCommits(3), 7), 2, "7 commits, k=3");
        assert_eq!(drive(SyncPolicy::EveryKCommits(3), 9), 3);
    }

    #[test]
    fn batched_sync_still_recovers_every_written_epoch() {
        // Without a crash, a clean close leaves all records readable even if
        // the final sync was still pending — and recovery replays them all.
        let dir = scratch_dir("batched");
        let g = generators::grid(4, 4);
        let mut server = Server::new(Box::new(DynamicDfs::new(&g)));
        let config = DurabilityConfig::new(&dir)
            .policy(CheckpointPolicy::Manual)
            .sync_policy(SyncPolicy::EveryKCommits(4));
        config.attach(&mut server).expect("attach");
        let mut last_fp = 0;
        for i in 0..5u32 {
            last_fp = commit(&mut server, vec![Update::DeleteEdge(i, i + 1)]);
        }
        drop(server);
        let recovered = recover_with(&config, parallel_factory).expect("recovery succeeds");
        assert_eq!(recovered.stats.recovered_epoch, 5);
        assert_eq!(recovered.server.maintainer().tree().fingerprint(), last_fp);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_render_parse_round_trips() {
        let g = generators::broom(6, 6);
        let dfs = DynamicDfs::new(&g);
        let ckpt = Checkpoint::capture(7, &dfs);
        let text = ckpt.render();
        let parsed = Checkpoint::parse(&text).expect("canonical checkpoint parses");
        assert_eq!(parsed.epoch, ckpt.epoch);
        assert_eq!(parsed.backend, ckpt.backend);
        assert_eq!(parsed.fingerprint, ckpt.fingerprint);
        assert_eq!(parsed.graph, ckpt.graph);
        parsed
            .tree
            .structural_eq(&ckpt.tree)
            .expect("identical tree");
        assert_eq!(parsed.render(), text);
        // Any single-byte flip breaks the whole-file checksum.
        let bad = text.replacen("backend parallel", "backend porallel", 1);
        assert!(Checkpoint::parse(&bad)
            .expect_err("corrupt checkpoint rejected")
            .contains("checksum"));
    }
}
