//! The batched query interface shared by all execution models.

use pardfs_graph::Vertex;
use pardfs_tree::TreeIndex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One independent query: *among the edges of `w` incident on the oracle-tree
/// path between `near` and `far`, return the one whose path endpoint is
/// nearest to `near`*.
///
/// `near` and `far` must be in ancestor–descendant relation in the tree the
/// oracle was built on (either may be the ancestor), or be equal. Queries in a
/// batch must be *independent* in the paper's sense (their descendant-side
/// vertices `w` are distinct), which is what allows one streaming pass or one
/// CONGEST broadcast phase to answer the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexQuery {
    /// The vertex whose incident edges are examined.
    pub w: Vertex,
    /// Preferred endpoint of the queried path.
    pub near: Vertex,
    /// The other endpoint of the queried path.
    pub far: Vertex,
}

impl VertexQuery {
    /// Convenience constructor.
    pub fn new(w: Vertex, near: Vertex, far: Vertex) -> Self {
        VertexQuery { w, near, far }
    }
}

/// A successful query answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHit {
    /// The queried vertex (the endpoint on the component side).
    pub from: Vertex,
    /// The endpoint lying on the queried path.
    pub on_path: Vertex,
    /// Distance (in tree levels of the oracle's build tree) between `on_path`
    /// and the query's `near` endpoint; 0 means the hit is at `near` itself.
    /// Used to combine partial answers of a multi-vertex query.
    pub rank_from_near: u32,
}

/// Aggregate statistics of an oracle decorated with [`CountingOracle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of `answer_batch` calls (each is one "set of independent
    /// queries" — one streaming pass / one broadcast phase).
    pub batches: u64,
    /// Total number of individual vertex queries.
    pub queries: u64,
    /// Largest batch seen.
    pub max_batch: u64,
    /// Number of answered (non-`None`) queries.
    pub hits: u64,
}

/// A batched, read-only query answerer.
///
/// Implementations:
/// * [`StructureD`](crate::StructureD) — in-memory sorted adjacency
///   (shared-memory parallel model);
/// * `pardfs-stream::PassOracle` — one pass over the edge stream per batch;
/// * `pardfs-congest::BroadcastOracle` — one pipelined broadcast/convergecast
///   per batch;
/// * `pardfs-core::FaultTolerantOracle` — the original `D` plus an overlay,
///   with current-tree paths decomposed into original-tree segments
///   (Theorem 9).
pub trait QueryOracle: Sync {
    /// Answer a set of independent queries. The result vector is aligned with
    /// the input slice.
    fn answer_batch(&self, queries: &[VertexQuery]) -> Vec<Option<EdgeHit>>;

    /// Decompose an ancestor–descendant path of the *current* tree (the tree
    /// being rerooted) into a sequence of paths understood by this oracle,
    /// ordered starting from the `near` end.
    ///
    /// The default is the identity, valid whenever the oracle was built on the
    /// current tree itself. The fault-tolerant oracle overrides this with the
    /// original-tree segment decomposition.
    fn decompose_path(
        &self,
        current: &TreeIndex,
        near: Vertex,
        far: Vertex,
    ) -> Vec<(Vertex, Vertex)> {
        let _ = current;
        vec![(near, far)]
    }
}

impl<O: QueryOracle + ?Sized> QueryOracle for &O {
    fn answer_batch(&self, queries: &[VertexQuery]) -> Vec<Option<EdgeHit>> {
        (**self).answer_batch(queries)
    }

    fn decompose_path(
        &self,
        current: &TreeIndex,
        near: Vertex,
        far: Vertex,
    ) -> Vec<(Vertex, Vertex)> {
        (**self).decompose_path(current, near, far)
    }
}

/// Decorator that counts batches and queries flowing through an oracle.
#[derive(Debug, Default)]
pub struct CountingOracle<O> {
    inner: O,
    batches: AtomicU64,
    queries: AtomicU64,
    max_batch: AtomicU64,
    hits: AtomicU64,
}

impl<O> CountingOracle<O> {
    /// Wrap an oracle.
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters.
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.max_batch.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }

    /// Access the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: QueryOracle> QueryOracle for CountingOracle<O> {
    fn answer_batch(&self, queries: &[VertexQuery]) -> Vec<Option<EdgeHit>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(queries.len() as u64, Ordering::Relaxed);
        let out = self.inner.answer_batch(queries);
        let hits = out.iter().filter(|h| h.is_some()).count() as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        out
    }

    fn decompose_path(
        &self,
        current: &TreeIndex,
        near: Vertex,
        far: Vertex,
    ) -> Vec<(Vertex, Vertex)> {
        self.inner.decompose_path(current, near, far)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DummyOracle;
    impl QueryOracle for DummyOracle {
        fn answer_batch(&self, queries: &[VertexQuery]) -> Vec<Option<EdgeHit>> {
            queries
                .iter()
                .map(|q| {
                    if q.w % 2 == 0 {
                        Some(EdgeHit {
                            from: q.w,
                            on_path: q.near,
                            rank_from_near: 0,
                        })
                    } else {
                        None
                    }
                })
                .collect()
        }
    }

    #[test]
    fn counting_oracle_tracks_batches_and_hits() {
        let oracle = CountingOracle::new(DummyOracle);
        let qs: Vec<VertexQuery> = (0..5).map(|w| VertexQuery::new(w, 0, 0)).collect();
        let out = oracle.answer_batch(&qs);
        assert_eq!(out.len(), 5);
        oracle.answer_batch(&qs[..2]);
        let stats = oracle.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 7);
        assert_eq!(stats.max_batch, 5);
        assert_eq!(stats.hits, 3 + 1);
        oracle.reset();
        assert_eq!(oracle.stats(), OracleStats::default());
    }
}
