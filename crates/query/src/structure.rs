//! The data structure `D`: post-order sorted adjacency lists with an update
//! overlay (Theorems 8 and 9).
//!
//! ## The overlay / rebuild contract
//!
//! `D` is built **once** on a DFS tree (the *base* tree) of a graph in which
//! every edge is a back edge of that tree. From then on, two parties share
//! responsibility for keeping queries truthful:
//!
//! * **Callers** route every subsequent mutation through the overlay
//!   (`note_insert_edge` / `note_delete_edge` / `note_insert_vertex` /
//!   `note_delete_vertex`) *before* querying, obeying the update vocabulary's
//!   contract (inserted edges do not already exist, deleted edges/vertices do
//!   exist). Queries keep speaking in **base-tree paths**: a caller whose
//!   current tree has diverged from the base tree decomposes its paths into
//!   base-tree segments first (`QueryOracle::decompose_path`, the Theorem 9
//!   argument) — inserted vertices, which the base tree has never heard of,
//!   travel as `near == far` singleton queries.
//! * **`D` itself** answers every query over the *net* edge set: the sorted
//!   base adjacency minus `removed`/`dead` masks plus the `extra` lists,
//!   scanned linearly. After `k` overlay records a query costs
//!   `O(log n + k)`.
//!
//! ## The amortization argument
//!
//! The `O(log n + k)` query bound is why incremental maintainers may *skip*
//! the `O(m)` rebuild: with `O(log² n)` query sets per update (Theorem 3),
//! letting the overlay grow to `k ≈ c · m / log n` keeps the accumulated
//! per-query penalty of the whole epoch within a constant factor of the one
//! rebuild that ends it — so the rebuild amortizes to `O(log n)` per update
//! instead of costing `O(m)` on every one. `overlay_updates()` is the
//! quantity rebuild policies compare against that threshold, and
//! `clear_overlay()` (or a fresh `build` on the current tree) starts the next
//! epoch. The fault tolerant algorithm is the `c → ∞` extreme: one build,
//! overlays forever, `reset` between batches.

use crate::oracle::{EdgeHit, QueryOracle, VertexQuery};
use pardfs_graph::{Graph, Vertex};
use pardfs_tree::TreeIndex;
use rayon::prelude::*;

/// Batches smaller than this are answered sequentially.
const PAR_THRESHOLD: usize = 256;

/// The paper's data structure `D`, built over a DFS tree `T` of a graph `G`.
///
/// For every vertex the structure stores the neighbours sorted by their
/// post-order number in `T`. Because every edge of `G` is a back edge of `T`
/// (the defining property of a DFS tree), the neighbours of `w` lying on an
/// ancestor–descendant path and *above* `w` form a contiguous post-order
/// window, so a query is a binary search (Section 5.2).
///
/// The *overlay* absorbs updates applied after the build (Theorem 9): inserted
/// edges are kept in small per-vertex lists that every query scans linearly,
/// deleted edges are recorded and filtered out, and deleted vertices are
/// masked. A query therefore costs `O(log n + k)` after `k` overlay updates,
/// exactly the bound used by the fault-tolerant algorithm.
#[derive(Debug, Clone)]
pub struct StructureD {
    idx: TreeIndex,
    sorted_adj: Vec<Vec<Vertex>>,
    extra_adj: Vec<Vec<Vertex>>,
    removed: Vec<Vec<Vertex>>,
    dead: Vec<bool>,
    overlay_updates: usize,
}

impl StructureD {
    /// Build `D` from a graph and (the index of) one of its DFS trees.
    ///
    /// Every edge of `graph` whose endpoints are both in the tree must be a
    /// back edge of the tree (checked in debug builds); edges violating this
    /// would silently corrupt binary searches, so callers route them through
    /// the overlay instead.
    pub fn build(graph: &Graph, idx: TreeIndex) -> Self {
        let cap = graph.capacity().max(idx.capacity());
        let sorted_row = |v: Vertex| {
            if !graph.is_active(v) || !idx.contains(v) {
                return Vec::new();
            }
            let mut nbrs: Vec<Vertex> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| idx.contains(u))
                .collect();
            debug_assert!(
                nbrs.iter().all(|&u| idx.is_back_edge(u, v)),
                "graph contains a cross edge w.r.t. the supplied DFS tree"
            );
            nbrs.sort_unstable_by_key(|&u| idx.post(u));
            nbrs
        };
        // Small builds stay on the calling thread: with the executor now
        // genuinely parallel, entering the pool costs two context switches,
        // which dwarfs sorting a few dozen adjacency rows.
        let sorted_adj: Vec<Vec<Vertex>> = if cap < PAR_THRESHOLD {
            (0..cap as Vertex).map(sorted_row).collect()
        } else {
            (0..cap as Vertex).into_par_iter().map(sorted_row).collect()
        };
        StructureD {
            idx,
            sorted_adj,
            extra_adj: vec![Vec::new(); cap],
            removed: vec![Vec::new(); cap],
            dead: vec![false; cap],
            overlay_updates: 0,
        }
    }

    /// The DFS tree index the structure was built on.
    pub fn tree(&self) -> &TreeIndex {
        &self.idx
    }

    /// Number of overlay updates recorded since the build.
    pub fn overlay_updates(&self) -> usize {
        self.overlay_updates
    }

    /// Memory footprint in machine words (adjacency entries only) — the
    /// `O(m)` size claim of Theorem 8.
    pub fn size_words(&self) -> usize {
        self.sorted_adj.iter().map(Vec::len).sum::<usize>()
            + self.extra_adj.iter().map(Vec::len).sum::<usize>()
            + self.removed.iter().map(Vec::len).sum::<usize>()
    }

    fn grow(&mut self, cap: usize) {
        if cap > self.sorted_adj.len() {
            self.sorted_adj.resize_with(cap, Vec::new);
            self.extra_adj.resize_with(cap, Vec::new);
            self.removed.resize_with(cap, Vec::new);
            self.dead.resize(cap, false);
        }
    }

    /// Discard every overlay record (inserted/deleted edges, dead vertices),
    /// returning the structure to its as-built state. Used by the fault
    /// tolerant algorithm, which reuses one build of `D` across many
    /// independent update batches (Theorem 14).
    pub fn clear_overlay(&mut self) {
        for list in &mut self.extra_adj {
            list.clear();
        }
        for list in &mut self.removed {
            list.clear();
        }
        self.dead.iter_mut().for_each(|d| *d = false);
        self.overlay_updates = 0;
    }

    /// Record an edge insertion in the overlay.
    pub fn note_insert_edge(&mut self, u: Vertex, v: Vertex) {
        if u == v {
            return;
        }
        self.grow((u.max(v) + 1) as usize);
        self.overlay_updates += 1;
        // Re-inserting a previously deleted edge cancels the deletion.
        let was_removed = remove_entry(&mut self.removed[u as usize], v);
        remove_entry(&mut self.removed[v as usize], u);
        if was_removed {
            return;
        }
        if !self.extra_adj[u as usize].contains(&v) {
            self.extra_adj[u as usize].push(v);
            self.extra_adj[v as usize].push(u);
        }
    }

    /// Record an edge deletion in the overlay.
    pub fn note_delete_edge(&mut self, u: Vertex, v: Vertex) {
        if u == v {
            return;
        }
        self.grow((u.max(v) + 1) as usize);
        self.overlay_updates += 1;
        // Deleting an overlay-inserted edge just drops it from the overlay.
        let was_extra = remove_entry(&mut self.extra_adj[u as usize], v);
        remove_entry(&mut self.extra_adj[v as usize], u);
        if was_extra {
            return;
        }
        if !self.removed[u as usize].contains(&v) {
            self.removed[u as usize].push(v);
            self.removed[v as usize].push(u);
        }
    }

    /// Record a vertex insertion (with its incident edges) in the overlay.
    pub fn note_insert_vertex(&mut self, v: Vertex, edges: &[Vertex]) {
        self.grow((v + 1) as usize);
        self.overlay_updates += 1;
        self.dead[v as usize] = false;
        for &u in edges {
            self.note_insert_edge(v, u);
        }
    }

    /// Record a vertex deletion in the overlay.
    pub fn note_delete_vertex(&mut self, v: Vertex) {
        self.grow((v + 1) as usize);
        self.overlay_updates += 1;
        self.dead[v as usize] = true;
    }

    fn is_dead(&self, v: Vertex) -> bool {
        (v as usize) < self.dead.len() && self.dead[v as usize]
    }

    fn edge_removed(&self, u: Vertex, v: Vertex) -> bool {
        (u as usize) < self.removed.len() && self.removed[u as usize].contains(&v)
    }

    /// Answer a single query (see [`VertexQuery`] for the semantics).
    pub fn query_vertex(&self, q: VertexQuery) -> Option<EdgeHit> {
        let VertexQuery { w, near, far } = q;
        if (w as usize) >= self.sorted_adj.len() || self.is_dead(w) {
            return None;
        }
        let idx = &self.idx;

        // Target is a single vertex that is not part of the build tree
        // (a vertex inserted after the build): only overlay edges can reach it.
        if near == far && !idx.contains(near) {
            if !self.is_dead(near)
                && self.extra_adj[w as usize].contains(&near)
                && !self.edge_removed(w, near)
            {
                return Some(EdgeHit {
                    from: w,
                    on_path: near,
                    rank_from_near: 0,
                });
            }
            return None;
        }
        if !idx.contains(near) || !idx.contains(far) {
            debug_assert!(false, "query path endpoints must belong to the oracle tree");
            return None;
        }
        let (top, bottom) = if idx.is_ancestor(near, far) {
            (near, far)
        } else if idx.is_ancestor(far, near) {
            (far, near)
        } else {
            debug_assert!(false, "query path endpoints are not ancestor-descendant");
            return None;
        };
        let near_level = idx.level(near);
        let mut best: Option<(u32, Vertex)> = None;
        let consider = |z: Vertex, best: &mut Option<(u32, Vertex)>| {
            let d = idx.level(z).abs_diff(near_level);
            if best.is_none_or(|(bd, _)| d < bd) {
                *best = Some((d, z));
            }
        };

        // Fast path: neighbours of `w` that are ancestors of `w` on the path.
        if idx.contains(w) {
            let l = idx.lca(w, bottom);
            if idx.is_ancestor(top, l) {
                let adj = &self.sorted_adj[w as usize];
                let lo = adj.partition_point(|&z| idx.post(z) < idx.post(l));
                let hi = adj.partition_point(|&z| idx.post(z) <= idx.post(top));
                if lo < hi {
                    // Candidates adj[lo..hi] all lie on path(top, l); walk from
                    // the preferred end until one survives the overlay filters.
                    let prefer_top = near == top;
                    let range: Box<dyn Iterator<Item = usize>> = if prefer_top {
                        Box::new((lo..hi).rev())
                    } else {
                        Box::new(lo..hi)
                    };
                    for i in range {
                        let z = adj[i];
                        if self.is_dead(z) || self.edge_removed(w, z) {
                            continue;
                        }
                        consider(z, &mut best);
                        break;
                    }
                }
            }

            // Slow path: neighbours of `w` that are descendants of `w` on the
            // path. This only happens when `w` is an ancestor of the queried
            // path's lower end; candidates inside the post-order window must be
            // filtered by an explicit on-path check.
            if idx.is_ancestor(w, bottom) && w != bottom {
                let portion_top = if idx.is_ancestor(top, w) { w } else { top };
                let adj = &self.sorted_adj[w as usize];
                let sub_lo = idx.post(w) + 1 - idx.size(w);
                let win_lo = idx.post(bottom).max(sub_lo);
                let win_hi = idx.post(portion_top).min(idx.post(w).saturating_sub(1));
                if win_lo <= win_hi {
                    let lo = adj.partition_point(|&z| idx.post(z) < win_lo);
                    let hi = adj.partition_point(|&z| idx.post(z) <= win_hi);
                    for &z in &adj[lo..hi] {
                        if z == w
                            || self.is_dead(z)
                            || self.edge_removed(w, z)
                            || !idx.is_ancestor(z, bottom)
                            || !idx.is_ancestor(top, z)
                        {
                            continue;
                        }
                        consider(z, &mut best);
                    }
                }
            }
        }

        // Overlay: inserted edges may be cross edges, so membership on the path
        // is checked explicitly for each of them.
        for &z in &self.extra_adj[w as usize] {
            if self.is_dead(z) || self.edge_removed(w, z) || !idx.contains(z) {
                continue;
            }
            if idx.is_ancestor(top, z) && idx.is_ancestor(z, bottom) {
                consider(z, &mut best);
            }
        }

        best.map(|(d, z)| EdgeHit {
            from: w,
            on_path: z,
            rank_from_near: d,
        })
    }
}

fn remove_entry(list: &mut Vec<Vertex>, v: Vertex) -> bool {
    if let Some(pos) = list.iter().position(|&x| x == v) {
        list.swap_remove(pos);
        true
    } else {
        false
    }
}

impl QueryOracle for StructureD {
    fn answer_batch(&self, queries: &[VertexQuery]) -> Vec<Option<EdgeHit>> {
        if queries.len() < PAR_THRESHOLD {
            queries.iter().map(|&q| self.query_vertex(q)).collect()
        } else {
            queries.par_iter().map(|&q| self.query_vertex(q)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardfs_graph::generators;
    use pardfs_tree::rooted::RootedTree;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// Plain iterative DFS producing a parent array (test-local helper; the
    /// real static DFS lives in `pardfs-seq`).
    fn dfs_tree(g: &Graph, root: Vertex) -> TreeIndex {
        let mut tree = RootedTree::new(g.capacity(), root);
        let mut stack: Vec<(Vertex, Vertex)> = vec![(root, root)];
        while let Some((v, p)) = stack.pop() {
            if v != root && tree.contains(v) {
                continue;
            }
            if v != root {
                tree.attach(v, p);
            }
            for &u in g.neighbors(v) {
                if u != root && !tree.contains(u) {
                    stack.push((u, v));
                }
            }
        }
        TreeIndex::build(&tree)
    }

    /// Brute force over the *current* edge set described by (graph, overlay).
    fn brute_force(
        g: &Graph,
        idx: &TreeIndex,
        extra: &[(Vertex, Vertex)],
        removed: &[(Vertex, Vertex)],
        dead: &[Vertex],
        q: VertexQuery,
    ) -> Option<EdgeHit> {
        let on_path = |z: Vertex| {
            idx.contains(z)
                && idx.contains(q.near)
                && idx.contains(q.far)
                && ((idx.is_ancestor(q.near, z) && idx.is_ancestor(z, q.far))
                    || (idx.is_ancestor(q.far, z) && idx.is_ancestor(z, q.near)))
        };
        let single_new = q.near == q.far && !idx.contains(q.near);
        let mut nbrs: Vec<Vertex> = g.neighbors(q.w).to_vec();
        for &(a, b) in extra {
            if a == q.w {
                nbrs.push(b);
            }
            if b == q.w {
                nbrs.push(a);
            }
        }
        nbrs.retain(|&z| {
            !removed.contains(&(q.w.min(z), q.w.max(z)))
                && !dead.contains(&z)
                && if single_new { z == q.near } else { on_path(z) }
        });
        if dead.contains(&q.w) {
            return None;
        }
        let near_level = if idx.contains(q.near) {
            idx.level(q.near)
        } else {
            0
        };
        nbrs.into_iter()
            .map(|z| {
                let rank = if single_new {
                    0
                } else {
                    idx.level(z).abs_diff(near_level)
                };
                (rank, z)
            })
            .min()
            .map(|(rank, z)| EdgeHit {
                from: q.w,
                on_path: z,
                rank_from_near: rank,
            })
    }

    fn random_tree_path(idx: &TreeIndex, rng: &mut impl Rng) -> (Vertex, Vertex) {
        let verts = idx.pre_order_vertices();
        let a = verts[rng.gen_range(0..verts.len())];
        // Pick a random ancestor of a (possibly a itself).
        let l = idx.level(a);
        let b = idx.ancestor_at_level(a, rng.gen_range(0..=l));
        if rng.gen_bool(0.5) {
            (a, b)
        } else {
            (b, a)
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..6 {
            let n: usize = rng.gen_range(10..120);
            let m = rng.gen_range(n - 1..(n * (n - 1) / 2).min(4 * n));
            let g = generators::random_connected_gnm(n, m, &mut rng);
            let idx = dfs_tree(&g, 0);
            let d = StructureD::build(&g, idx.clone());
            for _ in 0..300 {
                let w = rng.gen_range(0..n as Vertex);
                let (near, far) = random_tree_path(&idx, &mut rng);
                let q = VertexQuery::new(w, near, far);
                let expected_rank =
                    brute_force(&g, &idx, &[], &[], &[], q).map(|h| h.rank_from_near);
                let got_rank = d.query_vertex(q).map(|h| h.rank_from_near);
                assert_eq!(got_rank, expected_rank, "trial {trial} query {q:?}");
            }
        }
    }

    #[test]
    fn hit_vertices_are_really_on_the_path_and_adjacent() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_connected_gnm(80, 240, &mut rng);
        let idx = dfs_tree(&g, 0);
        let d = StructureD::build(&g, idx.clone());
        for _ in 0..500 {
            let w = rng.gen_range(0..80u32);
            let (near, far) = random_tree_path(&idx, &mut rng);
            if let Some(hit) = d.query_vertex(VertexQuery::new(w, near, far)) {
                assert!(g.has_edge(w, hit.on_path));
                assert!(
                    (idx.is_ancestor(near, hit.on_path) && idx.is_ancestor(hit.on_path, far))
                        || (idx.is_ancestor(far, hit.on_path)
                            && idx.is_ancestor(hit.on_path, near))
                );
                assert_eq!(
                    hit.rank_from_near,
                    idx.level(hit.on_path).abs_diff(idx.level(near))
                );
            }
        }
    }

    #[test]
    fn overlay_insertions_deletions_and_dead_vertices() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = generators::random_connected_gnm(60, 150, &mut rng);
        let idx = dfs_tree(&g, 0);
        let mut d = StructureD::build(&g, idx.clone());

        let mut extra = Vec::new();
        let mut removed = Vec::new();
        let mut dead = Vec::new();

        // Delete a handful of existing edges.
        for (u, v) in generators::sample_edges(&g, 5, &mut rng) {
            d.note_delete_edge(u, v);
            removed.push((u.min(v), u.max(v)));
        }
        // Insert a handful of fresh (possibly cross) edges.
        let mut added = 0;
        while added < 5 {
            let u = rng.gen_range(0..60u32);
            let v = rng.gen_range(0..60u32);
            if u != v && !g.has_edge(u, v) && !extra.contains(&(u.min(v), u.max(v))) {
                d.note_insert_edge(u, v);
                extra.push((u.min(v), u.max(v)));
                added += 1;
            }
        }
        // Kill one vertex.
        let victim = rng.gen_range(1..60u32);
        d.note_delete_vertex(victim);
        dead.push(victim);

        assert!(d.overlay_updates() >= 11);

        for _ in 0..600 {
            let w = rng.gen_range(0..60u32);
            let (near, far) = random_tree_path(&idx, &mut rng);
            let q = VertexQuery::new(w, near, far);
            let expected =
                brute_force(&g, &idx, &extra, &removed, &dead, q).map(|h| h.rank_from_near);
            let got = d.query_vertex(q).map(|h| h.rank_from_near);
            assert_eq!(got, expected, "query {q:?}");
        }
    }

    #[test]
    fn reinserting_a_deleted_edge_cancels_the_deletion() {
        let g = generators::path(4);
        let idx = dfs_tree(&g, 0);
        let mut d = StructureD::build(&g, idx.clone());
        d.note_delete_edge(1, 2);
        assert!(d.query_vertex(VertexQuery::new(2, 1, 1)).is_none());
        d.note_insert_edge(1, 2);
        assert!(d.query_vertex(VertexQuery::new(2, 1, 1)).is_some());
    }

    #[test]
    fn queries_to_an_inserted_vertex() {
        let g = generators::path(5);
        let idx = dfs_tree(&g, 0);
        let mut d = StructureD::build(&g, idx.clone());
        // Insert vertex 5 adjacent to 1 and 3.
        d.note_insert_vertex(5, &[1, 3]);
        let hit = d.query_vertex(VertexQuery::new(1, 5, 5)).unwrap();
        assert_eq!(hit.on_path, 5);
        assert!(d.query_vertex(VertexQuery::new(2, 5, 5)).is_none());
        // Queries *from* the new vertex against a tree path use its overlay edges.
        let hit = d.query_vertex(VertexQuery::new(5, 0, 4)).unwrap();
        assert_eq!(hit.from, 5);
        assert!(hit.on_path == 1 || hit.on_path == 3);
        // Nearest to the deep end 4 should be vertex 3.
        let hit = d.query_vertex(VertexQuery::new(5, 4, 0)).unwrap();
        assert_eq!(hit.on_path, 3);
        // Deleting the new vertex silences all of this.
        d.note_delete_vertex(5);
        assert!(d.query_vertex(VertexQuery::new(1, 5, 5)).is_none());
        assert!(d.query_vertex(VertexQuery::new(5, 0, 4)).is_none());
    }

    #[test]
    fn batched_answers_match_single_answers() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_connected_gnm(100, 300, &mut rng);
        let idx = dfs_tree(&g, 0);
        let d = StructureD::build(&g, idx.clone());
        let queries: Vec<VertexQuery> = (0..400)
            .map(|_| {
                let w = rng.gen_range(0..100u32);
                let (near, far) = random_tree_path(&idx, &mut rng);
                VertexQuery::new(w, near, far)
            })
            .collect();
        let batched = d.answer_batch(&queries);
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(*b, d.query_vertex(*q));
        }
    }

    #[test]
    fn size_words_is_linear_in_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::random_connected_gnm(50, 200, &mut rng);
        let idx = dfs_tree(&g, 0);
        let d = StructureD::build(&g, idx);
        assert_eq!(d.size_words(), 2 * 200);
    }
}
