//! # pardfs-query
//!
//! The data structure **D** of the paper (Section 5.2, Theorems 8 and 9) and
//! the *query oracle* abstraction through which every execution model
//! (shared-memory parallel, semi-streaming, distributed CONGEST) answers the
//! same batched, independent queries.
//!
//! `D` stores, for every vertex, its neighbours sorted by the post-order
//! number of the neighbour in the DFS tree the structure was built on. Because
//! every non-tree edge of a DFS tree is a back edge, the neighbours of a
//! vertex `w` that lie on an ancestor–descendant path `path(x, y)` and are
//! ancestors of `w` occupy a contiguous post-order window, so each of the
//! paper's three query types reduces to a binary search per *descendant-side*
//! vertex plus a reduction over partial results:
//!
//! 1. `Query(w, path(x, y))` — one binary search.
//! 2. `Query(T(w), path(x, y))` — one search per vertex of the subtree.
//! 3. `Query(path(v, w), path(x, y))` — one search per vertex of one of the
//!    paths.
//!
//! The crate exposes:
//!
//! * [`StructureD`] — the sorted-adjacency structure with an *overlay* that
//!   absorbs edge/vertex updates without rebuilding (Theorem 9), which is what
//!   the fault-tolerant algorithm relies on;
//! * [`VertexQuery`] / [`EdgeHit`] — the unit of work handed to an oracle;
//! * [`QueryOracle`] — the batched-query trait implemented by `StructureD`
//!   (shared memory), by the semi-streaming pass oracle (`pardfs-stream`) and
//!   by the CONGEST broadcast oracle (`pardfs-congest`);
//! * [`CountingOracle`] — a decorator counting batches/queries, used by the
//!   experiment harness to verify the `O(log^2 n)` bound on sequential query
//!   rounds (Theorem 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod structure;

pub use oracle::{CountingOracle, EdgeHit, OracleStats, QueryOracle, VertexQuery};
pub use structure::StructureD;
