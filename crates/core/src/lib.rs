//! # pardfs-core
//!
//! The paper's primary contribution: **parallel fully dynamic and fault
//! tolerant DFS for undirected graphs** (Khan, SPAA 2017).
//!
//! The crate is organised around the paper's own decomposition:
//!
//! * [`reduction`] — Section 3: any single update (edge/vertex ×
//!   insert/delete) reduces to independently rerooting disjoint subtrees of
//!   the current DFS tree, using `O(1)` sets of independent queries on the
//!   data structure `D` and LCA queries on `T` (Theorem 2 / Theorem 11).
//! * [`reroot`] — Section 4: the rerooting engine. Components of the
//!   unvisited graph are processed in synchronous parallel rounds; each round
//!   every component performs one traversal (path halving, disintegrating
//!   traversal, or the simple root-path traversal of the sequential baseline,
//!   depending on the [`Strategy`]), attaches the traversed path to the new
//!   tree `T*`, and splits into new components via batched `D` queries
//!   (the components property, Lemma 1).
//! * [`dynamic`] — Theorem 13: the fully dynamic maintainer. After every
//!   update only the `O(n)` tree index is rebuilt; `D` stays anchored to the
//!   tree of its last build, absorbing updates through its overlay and
//!   answering current-tree queries via the Theorem 9 segment decomposition.
//!   A configurable [`RebuildPolicy`] (default: overlay > `m / log₂ n`)
//!   decides when the `m`-processor preprocessing of Theorem 8 re-runs, so
//!   rebuilds are amortized instead of per-update.
//! * [`fault`] — Theorem 14: the fault tolerant maintainer. `D` is built
//!   *once*; a batch of `k` updates is absorbed by decomposing every queried
//!   path of the evolving tree into ancestor–descendant segments of the
//!   *original* tree (Theorem 9) and consulting the original `D` plus a small
//!   overlay.
//! * [`stats`] — instrumentation: engine rounds, sequential query sets,
//!   traversal census. These are the quantities the paper's theorems bound
//!   (`O(log^2 n)` query sets per reroot, `O(log^3 n)` EREW time), and the
//!   experiment harness reports them next to wall-clock numbers. The types
//!   themselves live in [`pardfs_api`] (shared by every backend) and are
//!   re-exported here under their historical paths.
//!
//! Both maintainers implement [`pardfs_api::DfsMaintainer`], the unified
//! trait the bench harness, examples and integration tests program against.
//!
//! ## Faithfulness note
//!
//! The `Phased` strategy implements the paper's disintegrating and
//! path-halving traversals with *per-component* size thresholds and a
//! generalised component invariant (a component may temporarily hold more
//! than one untraversed path). The paper instead preserves a strict
//! "one path per component" invariant via the heavy-subtree `l`/`p`/`r`
//! traversals and their special case (Section 4.4); those scenarios exist to
//! guarantee the synchronous phase/stage schedule and are replaced here by the
//! generalised grouping, whose measured round counts are reported by
//! experiment E3 (see DESIGN.md §4 and EXPERIMENTS.md). The `Simple` strategy
//! is the parallelised sequential baseline and serves as the ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod fault;
pub mod reduction;
pub mod reroot;

pub use pardfs_api::stats;

pub use dynamic::DynamicDfs;
pub use fault::{FaultTolerantDfs, FtResult};
pub use pardfs_api::{BatchReport, DfsMaintainer, RebuildPolicy, RebuildPolicyStats, StatsReport};
pub use reduction::reduce_update;
pub use reroot::{RerootJob, Rerooter, Strategy};
pub use stats::{RerootStats, TraversalKind, UpdateStats};
