//! The parallel fault tolerant DFS (Theorem 14).
//!
//! The graph is preprocessed **once**: a DFS tree `T` and the structure `D`
//! are built. For any batch of `k` updates, a DFS tree of the updated graph is
//! computed *without touching the preprocessed `D`*: the updates are recorded
//! in `D`'s overlay, the updates are processed one by one, and every query
//! that the reduction or the rerooting engine issues against a path of the
//! *current* tree `T*_i` is decomposed into ancestor–descendant segments of
//! the *original* tree (the argument of Theorem 9: every traversed path of
//! `T*_i` is a concatenation of monotone runs of original tree edges, plus the
//! freshly inserted vertices).
//!
//! Compared with [`crate::DynamicDfs`], the only extra cost is the segment
//! decomposition (local computation) and the `O(log n + k)` overlay scan in
//! each query — there is no per-update rebuild of `D`, which is what makes the
//! result achievable with `n` processors.

use crate::dynamic::{old_parents, reduce_and_reroot};
use crate::reduction::ReductionInput;
use crate::reroot::Strategy;
use crate::stats::UpdateStats;
use pardfs_api::{
    maintain_index, BatchReport, DfsMaintainer, ForestQuery, IndexMaintenanceStats, IndexPolicy,
    StatsReport,
};
use pardfs_graph::{Graph, Update, Vertex};
use pardfs_query::{EdgeHit, QueryOracle, StructureD, VertexQuery};
use pardfs_seq::augment::{self, AugmentedGraph};
use pardfs_seq::check::check_spanning_dfs_tree;
use pardfs_seq::static_dfs::static_dfs;
use pardfs_tree::rooted::NO_VERTEX;
use pardfs_tree::{TreeIndex, TreePatch};

/// Oracle adapter for the fault tolerant algorithm: answers come from the
/// original `D` (plus its overlay), and query paths of the current tree are
/// decomposed into original-tree segments.
pub struct FaultOracle<'a> {
    d: &'a StructureD,
}

impl<'a> FaultOracle<'a> {
    /// Wrap the preprocessed structure.
    pub fn new(d: &'a StructureD) -> Self {
        FaultOracle { d }
    }
}

impl QueryOracle for FaultOracle<'_> {
    fn answer_batch(&self, queries: &[VertexQuery]) -> Vec<Option<EdgeHit>> {
        self.d.answer_batch(queries)
    }

    fn decompose_path(
        &self,
        current: &TreeIndex,
        near: Vertex,
        far: Vertex,
    ) -> Vec<(Vertex, Vertex)> {
        decompose_into_original_segments(self.d.tree(), current, near, far)
    }
}

/// Decompose the current-tree path between `near` and `far` (an
/// ancestor–descendant path of `current`) into maximal runs that are
/// ancestor–descendant paths of `original`, ordered starting from `near`.
/// Vertices that are not part of the original tree (inserted after the
/// preprocessing) form singleton runs.
pub fn decompose_into_original_segments(
    original: &TreeIndex,
    current: &TreeIndex,
    near: Vertex,
    far: Vertex,
) -> Vec<(Vertex, Vertex)> {
    // Walk the current-tree path from `near` to `far`.
    let walk: Vec<Vertex> = if current.is_ancestor(near, far) {
        let mut w = pardfs_tree::paths::path_vertices(current, far, near);
        w.reverse();
        w
    } else {
        pardfs_tree::paths::path_vertices(current, near, far)
    };
    let orig_adjacent = |a: Vertex, b: Vertex| -> bool {
        original.contains(a)
            && original.contains(b)
            && (original.parent(a) == Some(b) || original.parent(b) == Some(a))
    };
    let mut out: Vec<(Vertex, Vertex)> = Vec::new();
    let mut run_start = walk[0];
    let mut run_end = walk[0];
    // +1 = moving towards original descendants, -1 = towards ancestors,
    // 0 = direction not fixed yet.
    let mut dir = 0i32;
    for &v in walk.iter().skip(1) {
        let step_dir = if !original.contains(run_end) || !original.contains(v) {
            None
        } else if original.parent(v) == Some(run_end) {
            Some(1)
        } else if original.parent(run_end) == Some(v) {
            Some(-1)
        } else {
            None
        };
        let extend = match step_dir {
            Some(d) if dir == 0 || dir == d => {
                dir = d;
                true
            }
            _ => false,
        };
        if extend && orig_adjacent(run_end, v) {
            run_end = v;
        } else {
            out.push((run_start, run_end));
            run_start = v;
            run_end = v;
            dir = 0;
        }
    }
    out.push((run_start, run_end));
    out
}

/// The result of absorbing a batch of updates with the fault tolerant
/// structure: the DFS tree of the updated graph and the per-update statistics.
#[derive(Debug, Clone)]
pub struct FtResult {
    idx: TreeIndex,
    aug: AugmentedGraph,
    /// Statistics of every processed update, in order.
    pub stats: Vec<UpdateStats>,
    /// User ids of the vertices created by `InsertVertex` updates, in order.
    pub inserted: Vec<Vertex>,
    /// Index-maintenance census accumulated while computing this result
    /// (patches spliced vs fallback rebuilds of the per-batch tree index).
    pub index: IndexMaintenanceStats,
    /// Cumulative index census *after each update* of this result, aligned
    /// with [`FtResult::stats`] — so per-update deltas can be recovered with
    /// [`IndexMaintenanceStats::since`], matching the snapshot semantics of
    /// `DfsMaintainer::stats` elsewhere. The last entry equals
    /// [`FtResult::index`].
    pub index_per_update: Vec<IndexMaintenanceStats>,
}

impl FtResult {
    /// The DFS tree of the updated augmented graph (internal ids).
    pub fn tree(&self) -> &TreeIndex {
        &self.idx
    }

    /// The updated augmented graph (internal ids).
    pub fn augmented_graph(&self) -> &Graph {
        self.aug.graph()
    }

    /// Parent of user vertex `v` in the resulting DFS forest.
    pub fn forest_parent(&self, v: Vertex) -> Option<Vertex> {
        augment::forest_parent(&self.idx, v)
    }

    /// Roots of the resulting DFS forest (user ids).
    pub fn forest_roots(&self) -> Vec<Vertex> {
        augment::forest_roots(&self.idx)
    }

    /// Are user vertices `u` and `v` connected in the updated graph?
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        augment::same_component(&self.idx, u, v)
    }

    /// Number of user vertices in the updated graph.
    pub fn num_vertices(&self) -> usize {
        self.aug.user_num_vertices()
    }

    /// Number of user edges in the updated graph (pseudo edges excluded).
    pub fn num_edges(&self) -> usize {
        self.aug.user_num_edges()
    }

    /// Validate the resulting tree against the updated graph.
    pub fn check(&self) -> Result<(), String> {
        check_spanning_dfs_tree(self.aug.graph(), &self.idx)
    }

    /// The batch's outcome in the unified reporting vocabulary of
    /// [`pardfs_api`]: one [`StatsReport::FaultTolerant`] per absorbed update
    /// plus the inserted vertex ids.
    pub fn batch_report(&self) -> BatchReport {
        BatchReport {
            inserted: self.inserted.clone(),
            per_update: self
                .stats
                .iter()
                .zip(&self.index_per_update)
                .map(|(&s, &index)| StatsReport::FaultTolerant { engine: s, index })
                .collect(),
        }
    }
}

/// Fault tolerant DFS: preprocess once, answer any batch of `k` updates.
///
/// Two usage styles are supported:
///
/// * **Query style** (the paper's setting): call [`FaultTolerantDfs::tree_after`]
///   with independent batches; each call answers "what would the DFS tree be
///   after these `k` failures" from the frozen preprocessed structure and
///   leaves the maintainer untouched.
/// * **Maintainer style** ([`DfsMaintainer`]): [`DfsMaintainer::apply_update`]
///   and [`DfsMaintainer::apply_batch`] *accumulate* updates; the maintained
///   tree is always `tree_after(all updates so far)`. `D` is still never
///   rebuilt — the overlay records of the accumulated batch stay alive
///   between calls, so absorbing the `i`-th update resumes from the current
///   tree and costs **one** absorption (`O(log n + i)` per query from the
///   overlay scan, not an `O(i)`-update replay; total absorptions over a
///   batch of `k` are `O(k)`, not `O(k²)`). Query-style [`Self::tree_after`]
///   calls can be freely interleaved: they stash the maintainer overlay,
///   run against the pristine structure, and restore it.
///   [`FaultTolerantDfs::reset`] drops the accumulated batch (and its
///   overlay) and returns to the preprocessed state.
#[derive(Debug)]
pub struct FaultTolerantDfs {
    aug: AugmentedGraph,
    original_idx: TreeIndex,
    d: StructureD,
    strategy: Strategy,
    /// Updates absorbed in maintainer style since the last [`Self::reset`].
    pending: Vec<Update>,
    /// The overlay records (internal ids) backing the pending updates,
    /// replayed into `d` after a query-style call wipes the overlay.
    notes: Vec<OverlayNote>,
    /// The tree of the pending batch (`None` ⇔ no pending updates).
    current: Option<FtResult>,
    /// Total single-update absorptions performed in maintainer style (the
    /// quantity the `O(k)` claim bounds; tests pin it).
    absorptions: u64,
    /// When the per-absorption tree index is delta-patched vs rebuilt.
    index_policy: IndexPolicy,
    /// What the index-maintenance policy did (both usage styles).
    index_stats: IndexMaintenanceStats,
}

/// One overlay record of the maintainer-style pending batch, in internal ids.
/// Replaying the sequence through `StructureD`'s `note_*` methods reproduces
/// the overlay exactly (the notes are order-sensitive: a delete after an
/// insert cancels differently than the reverse).
#[derive(Debug, Clone)]
enum OverlayNote {
    InsertEdge(Vertex, Vertex),
    DeleteEdge(Vertex, Vertex),
    DeleteVertex(Vertex),
    /// Vertex insertion with its real neighbours; the pseudo edge to the
    /// root is re-noted alongside, as during the original absorption.
    InsertVertex(Vertex, Vec<Vertex>),
}

impl FaultTolerantDfs {
    /// Preprocess the user graph: augment, run a static DFS and build `D`.
    pub fn new(user_graph: &Graph) -> Self {
        Self::with_strategy(user_graph, Strategy::Phased)
    }

    /// Preprocess with an explicit rerooting strategy.
    pub fn with_strategy(user_graph: &Graph, strategy: Strategy) -> Self {
        let aug = AugmentedGraph::new(user_graph);
        let original_idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let d = StructureD::build(aug.graph(), original_idx.clone());
        FaultTolerantDfs {
            aug,
            original_idx,
            d,
            strategy,
            pending: Vec::new(),
            notes: Vec::new(),
            current: None,
            absorptions: 0,
            index_policy: IndexPolicy::default(),
            index_stats: IndexMaintenanceStats::default(),
        }
    }

    /// Resume the maintainer from previously captured state: an augmented
    /// graph and a DFS tree of it (a durability checkpoint's contents). The
    /// provided tree becomes the preprocessed `original_idx` — exactly as if
    /// the maintainer had been preprocessed at the checkpointed moment — so
    /// the maintained tree continues from the crash-time tree, with an empty
    /// pending batch.
    pub fn from_state(aug: AugmentedGraph, idx: TreeIndex, strategy: Strategy) -> Self {
        assert_eq!(
            idx.root(),
            aug.pseudo_root(),
            "resumed tree must be rooted at the pseudo root"
        );
        assert_eq!(
            idx.capacity(),
            aug.graph().capacity(),
            "resumed tree id space must match the graph"
        );
        let d = StructureD::build(aug.graph(), idx.clone());
        FaultTolerantDfs {
            aug,
            original_idx: idx,
            d,
            strategy,
            pending: Vec::new(),
            notes: Vec::new(),
            current: None,
            absorptions: 0,
            index_policy: IndexPolicy::default(),
            index_stats: IndexMaintenanceStats::default(),
        }
    }

    /// Select when the per-absorption tree index is delta-patched vs rebuilt.
    pub fn set_index_policy(&mut self, policy: IndexPolicy) {
        self.index_policy = policy;
    }

    /// The index-maintenance policy in use.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// What the index-maintenance policy has done so far (across both the
    /// maintainer-style and query-style paths).
    pub fn index_stats(&self) -> IndexMaintenanceStats {
        self.index_stats
    }

    /// The updates accumulated in maintainer style since the last reset.
    pub fn pending_updates(&self) -> &[Update] {
        &self.pending
    }

    /// Total single-update absorptions performed in maintainer style since
    /// construction. With the resumable overlay this grows by exactly one per
    /// [`DfsMaintainer::apply_update`] — `O(k)` for `k` accumulated updates.
    pub fn absorptions(&self) -> u64 {
        self.absorptions
    }

    /// Drop the accumulated maintainer-style updates (and their overlay
    /// records), returning to the preprocessed graph and tree. The as-built
    /// part of the structure `D` is untouched (it never changes).
    pub fn reset(&mut self) {
        self.pending.clear();
        self.notes.clear();
        self.current = None;
        self.d.clear_overlay();
    }

    /// Re-record the pending maintainer-style updates into `d`'s overlay
    /// (after a query-style call cleared it).
    fn replay_notes(&mut self) {
        for note in &self.notes {
            match note {
                OverlayNote::InsertEdge(u, v) => self.d.note_insert_edge(*u, *v),
                OverlayNote::DeleteEdge(u, v) => self.d.note_delete_edge(*u, *v),
                OverlayNote::DeleteVertex(v) => self.d.note_delete_vertex(*v),
                OverlayNote::InsertVertex(v, nbrs) => {
                    self.d.note_insert_vertex(*v, nbrs);
                    self.d.note_insert_edge(*v, self.aug.pseudo_root());
                }
            }
        }
    }

    /// Absorb one maintainer-style update, resuming from the current tree:
    /// the overlay keeps the whole pending batch, so this is a single
    /// absorption regardless of how many updates came before.
    fn absorb_one(&mut self, update: &Update) -> Option<Vertex> {
        if self.current.is_none() {
            self.current = Some(FtResult {
                idx: self.original_idx.clone(),
                aug: self.aug.clone(),
                stats: Vec::new(),
                inserted: Vec::new(),
                index: IndexMaintenanceStats::default(),
                index_per_update: Vec::new(),
            });
        }
        let proot = self.aug.pseudo_root();
        let cur = self.current.as_mut().expect("initialised above");
        let internal = cur.aug.translate(update);
        let mut stats = UpdateStats::default();
        let mut input = ReductionInput::default();
        let mut inserted_user = None;

        match &internal {
            Update::InsertEdge(u, v) => {
                self.d.note_insert_edge(*u, *v);
                self.notes.push(OverlayNote::InsertEdge(*u, *v));
                cur.aug.apply_internal(&internal);
            }
            Update::DeleteEdge(u, v) => {
                self.d.note_delete_edge(*u, *v);
                self.notes.push(OverlayNote::DeleteEdge(*u, *v));
                cur.aug.apply_internal(&internal);
            }
            Update::DeleteVertex(v) => {
                self.d.note_delete_vertex(*v);
                self.notes.push(OverlayNote::DeleteVertex(*v));
                cur.aug.apply_internal(&internal);
            }
            Update::InsertVertex { .. } => {
                if let Some(nv) = cur.aug.apply_internal(&internal) {
                    let user = cur.aug.to_user(nv);
                    cur.inserted.push(user);
                    inserted_user = Some(user);
                    let nbrs: Vec<Vertex> = cur
                        .aug
                        .graph()
                        .neighbors(nv)
                        .iter()
                        .copied()
                        .filter(|&x| x != proot)
                        .collect();
                    self.d.note_insert_vertex(nv, &nbrs);
                    self.d.note_insert_edge(nv, proot);
                    self.notes.push(OverlayNote::InsertVertex(nv, nbrs.clone()));
                    input.inserted = Some(nv);
                    input.inserted_neighbors = nbrs;
                }
            }
        }

        let mut new_par: Vec<Vertex> = old_parents(&cur.idx);
        if new_par.len() < cur.aug.graph().capacity() {
            new_par.resize(cur.aug.graph().capacity(), NO_VERTEX);
        }
        let mut patch = TreePatch::new();
        let oracle = FaultOracle::new(&self.d);
        reduce_and_reroot(
            &cur.idx,
            &oracle,
            proot,
            &internal,
            &input,
            &mut new_par,
            &mut patch,
            &mut stats,
            self.strategy,
        );
        let before = self.index_stats;
        maintain_index(
            &mut cur.idx,
            &patch,
            &new_par,
            proot,
            self.index_policy,
            &mut self.index_stats,
        );
        cur.index.merge(&self.index_stats.since(&before));
        cur.index_per_update.push(cur.index);
        cur.stats.push(stats);
        self.pending.push(update.clone());
        self.absorptions += 1;
        inserted_user
    }

    /// The preprocessed DFS tree (internal ids).
    pub fn original_tree(&self) -> &TreeIndex {
        &self.original_idx
    }

    /// Size of the preprocessed structure `D` in words (the `O(m)` space claim
    /// of Theorem 14).
    pub fn structure_words(&self) -> usize {
        self.d.size_words()
    }

    /// Compute a DFS tree of the graph obtained by applying `updates`
    /// (user ids) to the preprocessed graph. The preprocessed structure is not
    /// modified; the overlay used during the computation is discarded at the
    /// end, so the call can be repeated with arbitrary other batches. Any
    /// maintainer-style pending batch is unaffected: its overlay records are
    /// stashed for the duration of the call and replayed afterwards.
    pub fn tree_after(&mut self, updates: &[Update]) -> FtResult {
        // Maintainer-style absorptions keep their overlay alive in `d`; a
        // query-style batch is relative to the *preprocessed* graph, so it
        // must see a pristine overlay.
        self.d.clear_overlay();
        let proot = self.aug.pseudo_root();
        let mut graph_aug = self.aug.clone();
        let mut idx = self.original_idx.clone();
        let mut all_stats = Vec::with_capacity(updates.len());
        let mut all_index = Vec::with_capacity(updates.len());
        let mut all_inserted = Vec::new();
        let index_before = self.index_stats;

        for update in updates {
            let internal = graph_aug.translate(update);
            let mut stats = UpdateStats::default();
            let mut input = ReductionInput::default();

            match &internal {
                Update::InsertEdge(u, v) => {
                    self.d.note_insert_edge(*u, *v);
                    graph_aug.apply_internal(&internal);
                }
                Update::DeleteEdge(u, v) => {
                    self.d.note_delete_edge(*u, *v);
                    graph_aug.apply_internal(&internal);
                }
                Update::DeleteVertex(v) => {
                    self.d.note_delete_vertex(*v);
                    graph_aug.apply_internal(&internal);
                }
                Update::InsertVertex { .. } => {
                    let nv = graph_aug.apply_internal(&internal);
                    if let Some(nv) = nv {
                        all_inserted.push(graph_aug.to_user(nv));
                        let nbrs: Vec<Vertex> = graph_aug
                            .graph()
                            .neighbors(nv)
                            .iter()
                            .copied()
                            .filter(|&x| x != proot)
                            .collect();
                        self.d.note_insert_vertex(nv, &nbrs);
                        // The augmentation also gave the new vertex a pseudo
                        // edge; the overlay must know about it so that a later
                        // disconnection can still attach the vertex under the
                        // pseudo root.
                        self.d.note_insert_edge(nv, proot);
                        input.inserted = Some(nv);
                        input.inserted_neighbors = nbrs;
                    }
                }
            }

            let mut new_par: Vec<Vertex> = old_parents(&idx);
            if new_par.len() < graph_aug.graph().capacity() {
                new_par.resize(graph_aug.graph().capacity(), NO_VERTEX);
            }
            let mut patch = TreePatch::new();
            let oracle = FaultOracle::new(&self.d);
            reduce_and_reroot(
                &idx,
                &oracle,
                proot,
                &internal,
                &input,
                &mut new_par,
                &mut patch,
                &mut stats,
                self.strategy,
            );

            // The tree index is local O(n) state; only D is frozen — so it
            // is delta-patched like every other backend's.
            maintain_index(
                &mut idx,
                &patch,
                &new_par,
                proot,
                self.index_policy,
                &mut self.index_stats,
            );
            all_index.push(self.index_stats.since(&index_before));
            all_stats.push(stats);
        }

        // Restore the preprocessed structure, then the maintainer-style
        // overlay (if a pending batch exists), for the next call.
        self.d.clear_overlay();
        self.replay_notes();

        FtResult {
            idx,
            aug: graph_aug,
            stats: all_stats,
            inserted: all_inserted,
            index: self.index_stats.since(&index_before),
            index_per_update: all_index,
        }
    }
}

impl ForestQuery for FaultTolerantDfs {
    fn forest_parent(&self, v: Vertex) -> Option<Vertex> {
        augment::forest_parent(DfsMaintainer::tree(self), v)
    }

    fn forest_roots(&self) -> Vec<Vertex> {
        augment::forest_roots(DfsMaintainer::tree(self))
    }

    fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        augment::same_component(DfsMaintainer::tree(self), u, v)
    }

    fn num_vertices(&self) -> usize {
        self.current
            .as_ref()
            .map(|r| r.num_vertices())
            .unwrap_or_else(|| self.aug.user_num_vertices())
    }

    fn num_edges(&self) -> usize {
        self.current
            .as_ref()
            .map(|r| r.num_edges())
            .unwrap_or_else(|| self.aug.user_num_edges())
    }
}

impl DfsMaintainer for FaultTolerantDfs {
    fn backend_name(&self) -> &'static str {
        "fault-tolerant"
    }

    fn apply_update(&mut self, update: &Update) -> Option<Vertex> {
        // Resume from the current tree: the shared overlay already describes
        // the pending batch, so the i-th update costs one absorption.
        self.absorb_one(update)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> BatchReport {
        // Native batch path: absorb each new update once, resuming from the
        // current tree — O(k) absorptions for the whole batch.
        if updates.is_empty() {
            return BatchReport::default();
        }
        let already_applied = self.current.as_ref().map(|r| r.stats.len()).unwrap_or(0);
        let already_inserted = self.current.as_ref().map(|r| r.inserted.len()).unwrap_or(0);
        for update in updates {
            self.absorb_one(update);
        }
        let cur = self.current.as_ref().expect("batch absorbed above");
        BatchReport {
            inserted: cur.inserted[already_inserted..].to_vec(),
            per_update: cur.stats[already_applied..]
                .iter()
                .zip(&cur.index_per_update[already_applied..])
                .map(|(&s, &index)| StatsReport::FaultTolerant { engine: s, index })
                .collect(),
        }
    }

    fn tree(&self) -> &TreeIndex {
        self.current
            .as_ref()
            .map(|r| r.tree())
            .unwrap_or(&self.original_idx)
    }

    fn augmented_graph(&self) -> &Graph {
        // The maintained graph, like the maintained tree, lives in the
        // pending result once maintainer-style updates have been absorbed —
        // `self.aug` stays frozen at the preprocessed graph.
        self.current
            .as_ref()
            .map(|r| r.augmented_graph())
            .unwrap_or(self.aug.graph())
    }

    fn check(&self) -> Result<(), String> {
        match &self.current {
            Some(r) => r.check(),
            None => check_spanning_dfs_tree(self.aug.graph(), &self.original_idx),
        }
    }

    fn stats(&self) -> StatsReport {
        StatsReport::FaultTolerant {
            engine: self
                .current
                .as_ref()
                .and_then(|r| r.stats.last().copied())
                .unwrap_or_default(),
            index: self.index_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardfs_graph::generators;
    use pardfs_graph::updates::{random_update_sequence, UpdateMix};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn decomposition_of_unchanged_paths_is_a_single_segment() {
        let g = generators::path(8);
        let aug = AugmentedGraph::new(&g);
        let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let segs = decompose_into_original_segments(&idx, &idx, 3, 7);
        assert_eq!(segs, vec![(3, 7)]);
        let segs = decompose_into_original_segments(&idx, &idx, 5, 5);
        assert_eq!(segs, vec![(5, 5)]);
    }

    #[test]
    fn decomposition_splits_at_direction_changes() {
        // Original tree: path 1-2-3-4-5 under the pseudo root (internal ids).
        // A current tree in which 3 hangs from 2 but the path continues
        // 2-1-... would change walking direction; simulate by decomposing a
        // current path whose vertex order goes down then up in the original.
        let g = generators::path(5);
        let aug = AugmentedGraph::new(&g);
        let orig = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        // Build a different current tree: reroot the path at its middle so the
        // current root-to-leaf path changes original direction at vertex 3.
        let mut dfs = crate::DynamicDfs::new(&g);
        dfs.apply_update(&Update::InsertEdge(0, 4));
        dfs.apply_update(&Update::DeleteEdge(1, 2));
        dfs.check().unwrap();
        let current = dfs.tree();
        // Take the deepest leaf and decompose its root path.
        let leaf = *current
            .pre_order_vertices()
            .iter()
            .max_by_key(|&&v| current.level(v))
            .unwrap();
        let segs = decompose_into_original_segments(&orig, current, leaf, current.root());
        // Every segment must be an ancestor-descendant path of the original
        // tree (or a singleton).
        for (a, b) in segs {
            assert!(
                a == b || orig.is_ancestor(a, b) || orig.is_ancestor(b, a),
                "segment ({a},{b}) is not monotone in the original tree"
            );
        }
    }

    #[test]
    fn single_failures_match_a_fresh_dfs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::random_connected_gnm(30, 70, &mut rng);
        let mut ft = FaultTolerantDfs::new(&g);
        for (u, v) in generators::sample_edges(&g, 8, &mut rng) {
            let result = ft.tree_after(&[Update::DeleteEdge(u, v)]);
            result.check().unwrap();
        }
    }

    #[test]
    fn batches_of_k_updates_remain_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::random_connected_gnm(40, 120, &mut rng);
        let mut ft = FaultTolerantDfs::new(&g);
        for k in 1..=6usize {
            let updates = random_update_sequence(&g, k, &UpdateMix::default(), &mut rng);
            let result = ft.tree_after(&updates);
            result
                .check()
                .unwrap_or_else(|e| panic!("batch of {k} updates broke the DFS tree: {e}"));
            assert_eq!(result.stats.len(), updates.len());
        }
    }

    #[test]
    fn repeated_batches_do_not_poison_the_structure() {
        let g = generators::grid(5, 5);
        let mut ft = FaultTolerantDfs::new(&g);
        let words_before = ft.structure_words();
        let r1 = ft.tree_after(&[Update::DeleteVertex(12), Update::DeleteEdge(0, 1)]);
        r1.check().unwrap();
        let r2 = ft.tree_after(&[Update::InsertEdge(0, 24)]);
        r2.check().unwrap();
        assert_eq!(ft.structure_words(), words_before);
        // The second batch must not see the first batch's deletions.
        assert!(
            r2.augmented_graph().has_edge(1, 2),
            "vertex 12 must still exist"
        );
    }

    #[test]
    fn maintainer_style_absorption_count_is_linear_in_k() {
        // The old implementation replayed the whole accumulated batch on
        // every apply_update (k(k+1)/2 absorptions for k updates); the
        // resumable overlay makes it exactly k.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let g = generators::random_connected_gnm(30, 70, &mut rng);
        let k = 12;
        let updates = random_update_sequence(&g, k, &UpdateMix::default(), &mut rng);
        let mut ft = FaultTolerantDfs::new(&g);
        for u in &updates {
            DfsMaintainer::apply_update(&mut ft, u);
            DfsMaintainer::check(&ft).unwrap();
        }
        assert_eq!(ft.absorptions(), k as u64, "one absorption per update");
        assert_eq!(ft.pending_updates().len(), k);
    }

    #[test]
    fn maintainer_style_batches_also_absorb_linearly() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let g = generators::random_connected_gnm(25, 60, &mut rng);
        let updates = random_update_sequence(&g, 9, &UpdateMix::default(), &mut rng);
        let mut ft = FaultTolerantDfs::new(&g);
        let r1 = DfsMaintainer::apply_batch(&mut ft, &updates[..4]);
        assert_eq!(r1.applied(), 4);
        let r2 = DfsMaintainer::apply_batch(&mut ft, &updates[4..]);
        assert_eq!(r2.applied(), 5);
        DfsMaintainer::check(&ft).unwrap();
        assert_eq!(ft.absorptions(), 9);
        // Per-update reports cover only the new updates, not the backlog.
        assert_eq!(r2.per_update.len(), 5);
        // Empty batches are free.
        let r3 = DfsMaintainer::apply_batch(&mut ft, &[]);
        assert!(r3.is_empty());
        assert_eq!(ft.absorptions(), 9);
    }

    #[test]
    fn batch_reports_carry_per_update_index_snapshots() {
        // Each per-update report holds the cumulative index census *as of
        // that update*, not the batch-final census duplicated — so diffing
        // consecutive entries recovers the per-update work.
        let g = generators::grid(4, 4);
        let mut ft = FaultTolerantDfs::new(&g);
        let r = DfsMaintainer::apply_batch(
            &mut ft,
            &[Update::DeleteEdge(0, 1), Update::DeleteEdge(5, 6)],
        );
        let censuses: Vec<_> = r
            .per_update
            .iter()
            .map(|s| *s.index_maintenance())
            .collect();
        assert_eq!(censuses.len(), 2);
        assert_eq!(censuses[0].patches_applied + censuses[0].full_rebuilds, 1);
        assert_eq!(censuses[1].patches_applied + censuses[1].full_rebuilds, 2);
        // Query style records them per result too.
        let q = ft.tree_after(&[Update::DeleteEdge(10, 11), Update::InsertEdge(0, 15)]);
        assert_eq!(q.index_per_update.len(), 2);
        assert_eq!(*q.index_per_update.last().unwrap(), q.index);
    }

    #[test]
    fn query_style_calls_do_not_disturb_the_pending_batch() {
        // Interleave maintainer-style updates with query-style tree_after
        // calls: the pending batch's overlay must survive the query-style
        // clear/restore cycle, and both styles must stay correct.
        let g = generators::grid(5, 5);
        let mut ft = FaultTolerantDfs::new(&g);
        DfsMaintainer::apply_update(&mut ft, &Update::DeleteEdge(0, 1));
        DfsMaintainer::apply_update(&mut ft, &Update::InsertVertex { edges: vec![3, 17] });
        DfsMaintainer::check(&ft).unwrap();
        let roots_before = ForestQuery::forest_roots(&ft);

        // A query-style batch relative to the *preprocessed* graph: it must
        // still see edge (0,1) and must not see the inserted vertex.
        let q = ft.tree_after(&[Update::DeleteVertex(12)]);
        q.check().unwrap();
        assert!(q.augmented_graph().has_edge(1, 2), "(0,1) untouched");
        assert_eq!(q.num_vertices(), 24, "25 - the deleted vertex");

        // The maintainer state is unchanged and can keep absorbing.
        assert_eq!(ForestQuery::forest_roots(&ft), roots_before);
        DfsMaintainer::apply_update(&mut ft, &Update::DeleteEdge(12, 13));
        DfsMaintainer::check(&ft).unwrap();
        assert_eq!(ft.absorptions(), 3);
        assert_eq!(ForestQuery::num_vertices(&ft), 26, "25 + inserted");
    }

    #[test]
    fn reset_drops_the_batch_and_its_overlay() {
        let g = generators::path(10);
        let mut ft = FaultTolerantDfs::new(&g);
        let words = ft.structure_words();
        DfsMaintainer::apply_update(&mut ft, &Update::DeleteEdge(4, 5));
        DfsMaintainer::apply_update(&mut ft, &Update::InsertEdge(0, 9));
        assert!(ft.structure_words() > words, "overlay holds records");
        ft.reset();
        assert_eq!(ft.pending_updates().len(), 0);
        assert_eq!(ft.structure_words(), words, "overlay gone");
        DfsMaintainer::check(&ft).unwrap();
        assert_eq!(ForestQuery::num_edges(&ft), 9, "back to preprocessed");
        // And the structure is reusable in either style afterwards.
        let r = ft.tree_after(&[Update::DeleteEdge(4, 5)]);
        r.check().unwrap();
        DfsMaintainer::apply_update(&mut ft, &Update::DeleteEdge(7, 8));
        DfsMaintainer::check(&ft).unwrap();
    }

    #[test]
    fn vertex_insertion_batches() {
        let g = generators::broom(8, 4);
        let mut ft = FaultTolerantDfs::new(&g);
        let result = ft.tree_after(&[
            Update::InsertVertex {
                edges: vec![0, 5, 9],
            },
            Update::InsertVertex { edges: vec![12, 2] },
            Update::DeleteEdge(3, 4),
        ]);
        result.check().unwrap();
        assert!(
            result.forest_parent(12).is_some() || {
                // vertex 12 may itself be a component root
                true
            }
        );
    }
}
