//! The parallel rerooting engine (Section 4 of the paper).
//!
//! Rerooting a subtree `T(r0)` at a new root `r*` proceeds in synchronous
//! rounds. The engine maintains a set of *components* of the unvisited graph;
//! in every round each live component performs one traversal, attaches the
//! traversed path to the new tree `T*`, and splits into new components whose
//! entry points are determined by the components property (Lemma 1): each new
//! component hangs from the edge incident *nearest to the end* of the freshly
//! traversed path.
//!
//! Two [`Strategy`] values select the traversal rule:
//!
//! * [`Strategy::Simple`] — every component is a single subtree of the old
//!   tree and the traversal walks from the entry vertex all the way to the
//!   subtree's root. This is the rerooting procedure of the sequential
//!   baseline \[6\], executed level-by-level in parallel; its round depth can be
//!   `Θ(n)` in the worst case.
//! * [`Strategy::Phased`] — components carry untraversed *path* pieces in
//!   addition to subtrees. A component entered on a path performs *path
//!   halving* (Section 4.2); a component entered inside a subtree performs a
//!   *disintegrating traversal* towards `v_H`, the deepest vertex holding more
//!   than half of the subtree (Section 4.1), which guarantees that every
//!   remaining subtree piece has at most half the size. See the crate-level
//!   faithfulness note for how this relates to the paper's heavy-subtree
//!   scenarios.
//!
//! All edge information is obtained through a [`QueryOracle`], so the same
//! engine runs on the in-memory structure `D`, on the original `D` of the
//! fault tolerant algorithm, on a semi-streaming pass oracle and on the
//! CONGEST broadcast oracle.

use crate::stats::{RerootStats, TraversalKind};
use pardfs_graph::Vertex;
use pardfs_query::{EdgeHit, QueryOracle, VertexQuery};
use pardfs_tree::paths::{path_vertices, PathSeg};
use pardfs_tree::rooted::NO_VERTEX;
use pardfs_tree::{TreeIndex, TreePatch};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Traversal selection rule of the rerooting engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Baswana-style root-path traversals (parallelised sequential baseline).
    Simple,
    /// Disintegrating traversals + path halving (the paper's phased engine
    /// with per-component thresholds).
    #[default]
    Phased,
}

/// A subtree-rerooting task produced by the reduction (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RerootJob {
    /// Root (in the old tree) of the subtree to reroot.
    pub sub_root: Vertex,
    /// Vertex of that subtree that becomes its new root.
    pub new_root: Vertex,
    /// Vertex of `T*` the new root will hang from.
    pub attach_parent: Vertex,
}

/// One ancestor–descendant segment of the freshly traversed path, tagged with
/// the endpoint that was traversed *last* (the "near" end for attachment
/// queries: the components property wants the edge nearest to the end of the
/// traversal).
#[derive(Debug, Clone, Copy)]
struct TraversalSeg {
    seg: PathSeg,
    near: Vertex,
}

/// Linked history of the paths a component's ancestors traversed; used to
/// attach the rare piece that has no edge to the current traversal.
#[derive(Debug)]
struct TrailNode {
    segs: Vec<TraversalSeg>,
    parent: Option<Arc<TrailNode>>,
}

/// A connected component of the unvisited graph.
#[derive(Debug, Clone)]
struct Component {
    /// Entry vertex (the future root of this component's DFS subtree).
    rc: Vertex,
    /// Vertex of `T*` the entry vertex hangs from.
    attach_parent: Vertex,
    /// Untraversed ancestor–descendant path pieces of the old tree.
    paths: Vec<PathSeg>,
    /// Roots of untraversed full subtrees of the old tree.
    subtrees: Vec<Vertex>,
    /// Traversal history for fallback attachment.
    trail: Arc<TrailNode>,
}

/// Output of processing one component for one round.
struct StepOutput {
    assignments: Vec<(Vertex, Vertex)>,
    new_components: Vec<Component>,
    kind: Option<TraversalKind>,
    query_sets: u64,
    query_batches: u64,
    queries: u64,
    trail_attachments: u64,
    max_paths: u64,
}

/// The rerooting engine. Borrowing the old tree index and a query oracle, it
/// rewrites the parent pointers of the rerooted subtrees into a caller-owned
/// parent array, and emits the same rewrites as a [`TreePatch`] so the caller
/// can delta-patch its tree index instead of rebuilding it.
pub struct Rerooter<'a, O: QueryOracle> {
    idx: &'a TreeIndex,
    oracle: &'a O,
    strategy: Strategy,
}

impl<'a, O: QueryOracle> Rerooter<'a, O> {
    /// Create an engine over the old tree `idx` and the given oracle.
    pub fn new(idx: &'a TreeIndex, oracle: &'a O, strategy: Strategy) -> Self {
        Rerooter {
            idx,
            oracle,
            strategy,
        }
    }

    /// Execute all reroot jobs, writing the new parent of every affected
    /// vertex into `new_par` (which must already contain the old parents so
    /// that untouched subtrees keep their structure) and recording every
    /// rewrite into `patch` for the index splice.
    pub fn run(
        &self,
        jobs: &[RerootJob],
        new_par: &mut [Vertex],
        patch: &mut TreePatch,
    ) -> RerootStats {
        let mut stats = RerootStats::default();
        let root_trail = Arc::new(TrailNode {
            segs: Vec::new(),
            parent: None,
        });
        let mut components: Vec<Component> = jobs
            .iter()
            .map(|j| {
                debug_assert!(self.idx.is_ancestor(j.sub_root, j.new_root));
                Component {
                    rc: j.new_root,
                    attach_parent: j.attach_parent,
                    paths: Vec::new(),
                    subtrees: vec![j.sub_root],
                    trail: root_trail.clone(),
                }
            })
            .collect();

        while !components.is_empty() {
            stats.rounds += 1;
            stats.components += components.len() as u64;
            // One traversal per live component, fanned out across the
            // executor's workers (each `step` is a coarse, independent unit —
            // exactly the per-round parallelism Theorem 12 charges one
            // parallel step for). A lone component stays on this thread.
            let outputs: Vec<StepOutput> = if components.len() > 1 {
                components.par_iter().map(|c| self.step(c)).collect()
            } else {
                components.iter().map(|c| self.step(c)).collect()
            };
            let mut round_max_sets = 0u64;
            let mut next = Vec::new();
            for out in outputs {
                round_max_sets = round_max_sets.max(out.query_sets);
                stats.query_batches += out.query_batches;
                stats.queries += out.queries;
                stats.trail_attachments += out.trail_attachments;
                stats.max_paths_in_component = stats.max_paths_in_component.max(out.max_paths);
                if let Some(kind) = out.kind {
                    stats.record_traversal(kind);
                }
                for (child, parent) in out.assignments {
                    debug_assert_ne!(parent, NO_VERTEX);
                    new_par[child as usize] = parent;
                    patch.assign(child, parent);
                    stats.relinked_vertices += 1;
                }
                next.extend(out.new_components);
            }
            stats.query_sets += round_max_sets;
            components = next;
        }
        stats
    }

    /// Process one component for one round.
    fn step(&self, c: &Component) -> StepOutput {
        // Fast path of [6]: a lone subtree entered through its own root keeps
        // its internal structure; only the attachment edge changes.
        if c.paths.is_empty() && c.subtrees.len() == 1 && c.subtrees[0] == c.rc {
            return StepOutput {
                assignments: vec![(c.rc, c.attach_parent)],
                new_components: Vec::new(),
                kind: None,
                query_sets: 0,
                query_batches: 0,
                queries: 0,
                trail_attachments: 0,
                max_paths: c.paths.len() as u64,
            };
        }
        if let Some(pi) = c.paths.iter().position(|p| p.contains(self.idx, c.rc)) {
            return self.step_path_halve(c, pi);
        }
        let ti = c
            .subtrees
            .iter()
            .position(|&s| self.idx.is_ancestor(s, c.rc))
            .expect("component entry vertex must lie on one of its pieces");
        match self.strategy {
            Strategy::Simple => self.step_subtree(c, ti, TraversalKind::RootPath),
            Strategy::Phased => self.step_subtree(c, ti, TraversalKind::Disintegrate),
        }
    }

    /// Traverse inside the subtree containing `rc`, either to the subtree root
    /// (`RootPath`) or to the heavy vertex `v_H` (`Disintegrate`).
    fn step_subtree(&self, c: &Component, ti: usize, kind: TraversalKind) -> StepOutput {
        let idx = self.idx;
        let sub_root = c.subtrees[ti];
        let goal = match kind {
            TraversalKind::RootPath => sub_root,
            TraversalKind::Disintegrate => {
                let threshold = idx.size(sub_root) / 2;
                idx.heavy_descendant(sub_root, threshold)
            }
            TraversalKind::PathHalve => unreachable!("path halving is not a subtree traversal"),
        };
        let vl = idx.lca(c.rc, goal);

        // Ordered traversal: rc -> vl (upwards), then vl -> goal (downwards).
        let mut ordered = path_vertices(idx, c.rc, vl);
        let mut segs = vec![TraversalSeg {
            seg: PathSeg {
                top: vl,
                bottom: c.rc,
            },
            near: vl,
        }];
        if goal != vl {
            let first_down = idx.child_toward(vl, goal);
            let mut down = path_vertices(idx, goal, first_down);
            down.reverse();
            ordered.extend_from_slice(&down);
            segs.push(TraversalSeg {
                seg: PathSeg {
                    top: first_down,
                    bottom: goal,
                },
                near: goal,
            });
        }

        let mut assignments = Vec::with_capacity(ordered.len());
        let mut prev = c.attach_parent;
        for &v in &ordered {
            assignments.push((v, prev));
            prev = v;
        }
        let traversed: HashSet<Vertex> = ordered.iter().copied().collect();

        // Remaining pieces of the traversed subtree.
        let mut piece_paths: Vec<PathSeg> = Vec::new();
        let mut piece_subtrees: Vec<Vertex> = Vec::new();
        for &v in &ordered {
            for &ch in idx.children(v) {
                if !traversed.contains(&ch) && idx.is_ancestor(sub_root, ch) {
                    piece_subtrees.push(ch);
                }
            }
        }
        // Leftover spine above the branch point (only when the traversal did
        // not reach the subtree root).
        if vl != sub_root {
            let spine = PathSeg {
                top: sub_root,
                bottom: idx.parent(vl).expect("vl below sub_root has a parent"),
            };
            for v in spine.vertices_bottom_up(idx) {
                for &ch in idx.children(v) {
                    if ch != vl && !spine.contains(idx, ch) {
                        piece_subtrees.push(ch);
                    }
                }
            }
            piece_paths.push(spine);
        }
        // Untouched pieces of the component.
        piece_paths.extend(c.paths.iter().copied());
        piece_subtrees.extend(c.subtrees.iter().copied().filter(|&s| s != sub_root));

        self.regroup(
            c,
            segs,
            piece_paths,
            piece_subtrees,
            assignments,
            Some(kind),
        )
    }

    /// Path halving (Section 4.2): traverse from `rc` to the farther end of the
    /// path piece containing it.
    fn step_path_halve(&self, c: &Component, pi: usize) -> StepOutput {
        let idx = self.idx;
        let p = c.paths[pi];
        let end = p.farther_end(idx, c.rc);
        let ordered: Vec<Vertex> = if end == p.top {
            path_vertices(idx, c.rc, p.top)
        } else {
            let mut down = path_vertices(idx, p.bottom, c.rc);
            down.reverse();
            down
        };
        let seg = TraversalSeg {
            seg: PathSeg::new(idx, c.rc, end),
            near: end,
        };
        let mut assignments = Vec::with_capacity(ordered.len());
        let mut prev = c.attach_parent;
        for &v in &ordered {
            assignments.push((v, prev));
            prev = v;
        }
        let mut piece_paths: Vec<PathSeg> = Vec::new();
        if let Some(rest) = p.remainder_after_walk(idx, c.rc, end) {
            piece_paths.push(rest);
        }
        for (i, other) in c.paths.iter().enumerate() {
            if i != pi {
                piece_paths.push(*other);
            }
        }
        let piece_subtrees = c.subtrees.clone();
        self.regroup(
            c,
            vec![seg],
            piece_paths,
            piece_subtrees,
            assignments,
            Some(TraversalKind::PathHalve),
        )
    }

    /// After a traversal: group the remaining pieces into connected components
    /// (via existence queries), find each group's attachment edge on the
    /// freshly traversed path (components property), and emit the new
    /// components.
    fn regroup(
        &self,
        c: &Component,
        trav: Vec<TraversalSeg>,
        paths: Vec<PathSeg>,
        subtrees: Vec<Vertex>,
        assignments: Vec<(Vertex, Vertex)>,
        kind: Option<TraversalKind>,
    ) -> StepOutput {
        let idx = self.idx;
        let mut query_sets = 0u64;
        let mut query_batches = 0u64;
        let mut queries = 0u64;
        let mut trail_attachments = 0u64;

        let n_paths = paths.len();
        let n_pieces = n_paths + subtrees.len();
        // Piece i: 0..n_paths are paths, n_paths.. are subtrees.
        let piece_vertices = |i: usize| -> Vec<Vertex> {
            if i < n_paths {
                paths[i].vertices_bottom_up(idx)
            } else {
                idx.subtree_vertices(subtrees[i - n_paths]).to_vec()
            }
        };

        // --- 1. connectivity grouping -------------------------------------
        // Subtree–subtree edges cannot exist in a DFS tree, so only edges
        // between a piece and a *path* piece can merge groups. With no path
        // pieces every piece is its own component and no queries are needed.
        let mut dsu: Vec<usize> = (0..n_pieces).collect();
        fn find(dsu: &mut [usize], mut x: usize) -> usize {
            while dsu[x] != x {
                dsu[x] = dsu[dsu[x]];
                x = dsu[x];
            }
            x
        }
        if n_paths > 0 && n_pieces > 1 {
            let mut batch: Vec<VertexQuery> = Vec::new();
            let mut tags: Vec<(usize, usize)> = Vec::new(); // (piece, target path)
            for i in 0..n_pieces {
                for (j, p) in paths.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    for w in piece_vertices(i) {
                        for (a, b) in self.oracle.decompose_path(idx, p.top, p.bottom) {
                            batch.push(VertexQuery::new(w, a, b));
                            tags.push((i, j));
                        }
                    }
                }
            }
            if !batch.is_empty() {
                query_sets += 1;
                query_batches += 1;
                queries += batch.len() as u64;
                let answers = self.oracle.answer_batch(&batch);
                for ((piece, path_piece), hit) in tags.iter().zip(&answers) {
                    if hit.is_some() {
                        let (a, b) = (find(&mut dsu, *piece), find(&mut dsu, *path_piece));
                        if a != b {
                            dsu[a] = b;
                        }
                    }
                }
            }
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        {
            let mut group_of = vec![usize::MAX; n_pieces];
            for i in 0..n_pieces {
                let r = find(&mut dsu, i);
                if group_of[r] == usize::MAX {
                    group_of[r] = groups.len();
                    groups.push(Vec::new());
                }
                groups[group_of[r]].push(i);
            }
        }

        // --- 2. attachment on the freshly traversed path -------------------
        // One batch: every vertex of every piece against every traversal
        // segment (decomposed into oracle-tree segments).
        #[derive(Clone, Copy)]
        struct Tag {
            group: usize,
            seg_rank: u32, // 0 = latest traversal segment (preferred)
            sub_rank: u32, // position within the decomposition (preferred = 0)
        }
        let mut batch: Vec<VertexQuery> = Vec::new();
        let mut tags: Vec<Tag> = Vec::new();
        let group_of_piece = {
            let mut v = vec![0usize; n_pieces];
            for (g, members) in groups.iter().enumerate() {
                for &m in members {
                    v[m] = g;
                }
            }
            v
        };
        for (i, &g) in group_of_piece.iter().enumerate().take(n_pieces) {
            for w in piece_vertices(i) {
                for (s_idx, ts) in trav.iter().enumerate().rev() {
                    let far = if ts.near == ts.seg.top {
                        ts.seg.bottom
                    } else {
                        ts.seg.top
                    };
                    for (k, (a, b)) in self
                        .oracle
                        .decompose_path(idx, ts.near, far)
                        .into_iter()
                        .enumerate()
                    {
                        batch.push(VertexQuery::new(w, a, b));
                        tags.push(Tag {
                            group: g,
                            seg_rank: (trav.len() - 1 - s_idx) as u32,
                            sub_rank: k as u32,
                        });
                    }
                }
            }
        }
        // (segment rank, sub rank, rank from near) — lexicographically smaller wins.
        type AttachKey = (u32, u32, u32);
        let mut best: Vec<Option<(AttachKey, EdgeHit)>> = vec![None; groups.len()];
        if !batch.is_empty() {
            query_sets += 1;
            query_batches += 1;
            queries += batch.len() as u64;
            let answers = self.oracle.answer_batch(&batch);
            for (tag, hit) in tags.iter().zip(&answers) {
                if let Some(h) = hit {
                    let key = (tag.seg_rank, tag.sub_rank, h.rank_from_near);
                    let slot = &mut best[tag.group];
                    if slot.is_none_or(|(k, _)| key < k) {
                        *slot = Some((key, *h));
                    }
                }
            }
        }

        // --- 3. fallback through the trail for orphan groups ---------------
        let new_trail = Arc::new(TrailNode {
            segs: trav.clone(),
            parent: Some(c.trail.clone()),
        });
        let mut new_components = Vec::with_capacity(groups.len());
        for (g, members) in groups.iter().enumerate() {
            let attach = match best[g] {
                Some((_, h)) => h,
                None => {
                    trail_attachments += 1;
                    let hit = self.attach_through_trail(
                        c,
                        members,
                        &piece_vertices,
                        &mut query_sets,
                        &mut query_batches,
                        &mut queries,
                    );
                    match hit {
                        Some(h) => h,
                        None => panic!(
                            "rerooting invariant violated: a piece has no edge to any \
                             previously traversed path (component entered at {})",
                            c.rc
                        ),
                    }
                }
            };
            let mut comp = Component {
                rc: attach.from,
                attach_parent: attach.on_path,
                paths: Vec::new(),
                subtrees: Vec::new(),
                trail: new_trail.clone(),
            };
            for &m in members {
                if m < n_paths {
                    comp.paths.push(paths[m]);
                } else {
                    comp.subtrees.push(subtrees[m - n_paths]);
                }
            }
            new_components.push(comp);
        }

        let max_paths = new_components
            .iter()
            .map(|c| c.paths.len() as u64)
            .max()
            .unwrap_or(0)
            .max(c.paths.len() as u64);
        StepOutput {
            assignments,
            new_components,
            kind,
            query_sets,
            query_batches,
            queries,
            trail_attachments,
            max_paths,
        }
    }

    /// Walk the component's traversal history, newest first, until one of the
    /// group's vertices has an edge to a recorded segment.
    #[allow(clippy::too_many_arguments)]
    fn attach_through_trail(
        &self,
        c: &Component,
        members: &[usize],
        piece_vertices: &dyn Fn(usize) -> Vec<Vertex>,
        query_sets: &mut u64,
        query_batches: &mut u64,
        queries: &mut u64,
    ) -> Option<EdgeHit> {
        let idx = self.idx;
        let mut node = Some(c.trail.clone());
        while let Some(t) = node {
            for ts in t.segs.iter().rev() {
                let far = if ts.near == ts.seg.top {
                    ts.seg.bottom
                } else {
                    ts.seg.top
                };
                let mut batch = Vec::new();
                for &m in members {
                    for w in piece_vertices(m) {
                        for (a, b) in self.oracle.decompose_path(idx, ts.near, far) {
                            batch.push(VertexQuery::new(w, a, b));
                        }
                    }
                }
                if batch.is_empty() {
                    continue;
                }
                *query_sets += 1;
                *query_batches += 1;
                *queries += batch.len() as u64;
                let hit = self
                    .oracle
                    .answer_batch(&batch)
                    .into_iter()
                    .flatten()
                    .min_by_key(|h| h.rank_from_near);
                if hit.is_some() {
                    return hit;
                }
            }
            node = t.parent.clone();
        }
        None
    }
}
