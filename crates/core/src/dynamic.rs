//! The parallel fully dynamic DFS maintainer (Theorem 13).
//!
//! Per update: record the update in `D`'s overlay, apply it to the augmented
//! graph, run the reduction (Section 3), reroot the affected subtrees with the
//! parallel engine (Section 4), then rebuild the tree index and `D` on the new
//! tree — the `O(log n)`-time, `m`-processor preprocessing of Theorem 8 — so
//! the next update again starts from a structure in which every edge is a back
//! edge.

use crate::reduction::{reduce_update, ReductionInput};
use crate::reroot::{Rerooter, Strategy};
use crate::stats::UpdateStats;
use pardfs_api::{DfsMaintainer, StatsReport};
use pardfs_graph::{Graph, Update, Vertex};
use pardfs_query::StructureD;
use pardfs_seq::augment;
use pardfs_seq::augment::AugmentedGraph;
use pardfs_seq::check::check_spanning_dfs_tree;
use pardfs_seq::static_dfs::static_dfs;
use pardfs_tree::rooted::NO_VERTEX;
use pardfs_tree::TreeIndex;
use std::time::Instant;

/// Parallel fully dynamic DFS of an undirected graph.
///
/// The maintained structure is a DFS tree of the *augmented* graph (user graph
/// plus a pseudo root adjacent to every vertex, Section 2); its children are
/// the roots of a DFS forest of the user graph. The public API speaks user
/// vertex ids throughout.
#[derive(Debug)]
pub struct DynamicDfs {
    aug: AugmentedGraph,
    idx: TreeIndex,
    d: StructureD,
    strategy: Strategy,
    last_stats: UpdateStats,
    updates_applied: u64,
}

impl DynamicDfs {
    /// Build the maintainer with the default (phased) strategy.
    pub fn new(user_graph: &Graph) -> Self {
        Self::with_strategy(user_graph, Strategy::Phased)
    }

    /// Build the maintainer with an explicit rerooting strategy.
    pub fn with_strategy(user_graph: &Graph, strategy: Strategy) -> Self {
        let aug = AugmentedGraph::new(user_graph);
        let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let d = StructureD::build(aug.graph(), idx.clone());
        DynamicDfs {
            aug,
            idx,
            d,
            strategy,
            last_stats: UpdateStats::default(),
            updates_applied: 0,
        }
    }

    /// The rerooting strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The current DFS tree of the augmented graph (internal ids; the pseudo
    /// root is vertex 0 and user vertex `v` is internal `v + 1`).
    pub fn tree(&self) -> &TreeIndex {
        &self.idx
    }

    /// The augmented graph (internal ids).
    pub fn augmented_graph(&self) -> &Graph {
        self.aug.graph()
    }

    /// The pseudo root (internal id).
    pub fn pseudo_root(&self) -> Vertex {
        self.aug.pseudo_root()
    }

    /// Number of user vertices currently in the graph.
    pub fn num_vertices(&self) -> usize {
        self.aug.user_num_vertices()
    }

    /// Number of user edges currently in the graph.
    pub fn num_edges(&self) -> usize {
        self.aug.user_num_edges()
    }

    /// Parent of user vertex `v` in the maintained DFS forest (`None` for
    /// component roots and vertices not present).
    pub fn forest_parent(&self, v: Vertex) -> Option<Vertex> {
        augment::forest_parent(&self.idx, v)
    }

    /// Roots of the maintained DFS forest (user ids), one per connected
    /// component of the user graph.
    pub fn forest_roots(&self) -> Vec<Vertex> {
        augment::forest_roots(&self.idx)
    }

    /// Are user vertices `u` and `v` in the same connected component? (A DFS
    /// forest answers connectivity for free: same tree ⇔ same component.)
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        augment::same_component(&self.idx, u, v)
    }

    /// Statistics of the most recent update.
    pub fn last_stats(&self) -> UpdateStats {
        self.last_stats
    }

    /// Total number of updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Validate the maintained tree against the augmented graph (used by tests
    /// and debug assertions; `O(n + m)`).
    pub fn check(&self) -> Result<(), String> {
        check_spanning_dfs_tree(self.aug.graph(), &self.idx)
    }

    /// Apply one dynamic update (user ids). Returns the user id of the
    /// inserted vertex for vertex insertions.
    pub fn apply_update(&mut self, update: &Update) -> Option<Vertex> {
        let internal = self.aug.translate(update);
        self.apply_internal(&internal).map(|v| self.aug.to_user(v))
    }

    fn apply_internal(&mut self, update: &Update) -> Option<Vertex> {
        let mut stats = UpdateStats::default();
        let proot = self.aug.pseudo_root();

        // 1. Overlay + graph application (the oracle must describe the updated
        //    edge set during the reroot).
        let mut input = ReductionInput::default();
        let inserted = match update {
            Update::InsertEdge(u, v) => {
                self.d.note_insert_edge(*u, *v);
                self.aug.apply_internal(update)
            }
            Update::DeleteEdge(u, v) => {
                self.d.note_delete_edge(*u, *v);
                self.aug.apply_internal(update)
            }
            Update::DeleteVertex(v) => {
                self.d.note_delete_vertex(*v);
                self.aug.apply_internal(update)
            }
            Update::InsertVertex { .. } => {
                let nv = self.aug.apply_internal(update);
                if let Some(nv) = nv {
                    let nbrs: Vec<Vertex> = self
                        .aug
                        .graph()
                        .neighbors(nv)
                        .iter()
                        .copied()
                        .filter(|&x| x != proot)
                        .collect();
                    self.d.note_insert_vertex(nv, &nbrs);
                    // Also record the pseudo edge added by the augmentation so
                    // queries within this very update can see it.
                    self.d.note_insert_edge(nv, proot);
                    input.inserted = Some(nv);
                    input.inserted_neighbors = nbrs;
                }
                nv
            }
        };

        // 2. Reduction + parallel reroot.
        let reroot_start = Instant::now();
        let mut new_par: Vec<Vertex> = old_parents(&self.idx);
        if new_par.len() < self.aug.graph().capacity() {
            new_par.resize(self.aug.graph().capacity(), NO_VERTEX);
        }
        let jobs = reduce_update(
            &self.idx,
            &self.d,
            proot,
            update,
            &input,
            &mut new_par,
            &mut stats,
        );
        stats.reroot_jobs = jobs.len() as u64;
        let engine = Rerooter::new(&self.idx, &self.d, self.strategy);
        stats.reroot = engine.run(&jobs, &mut new_par);
        stats.reroot_micros = reroot_start.elapsed().as_micros() as u64;

        // 3. Rebuild the tree index and D for the next update (Theorem 8).
        let rebuild_start = Instant::now();
        let idx = TreeIndex::from_parent_slice(&new_par, proot);
        let d = StructureD::build(self.aug.graph(), idx.clone());
        stats.rebuild_micros = rebuild_start.elapsed().as_micros() as u64;

        self.idx = idx;
        self.d = d;
        self.last_stats = stats;
        self.updates_applied += 1;
        inserted
    }
}

impl DfsMaintainer for DynamicDfs {
    fn backend_name(&self) -> &'static str {
        "parallel"
    }

    fn apply_update(&mut self, update: &Update) -> Option<Vertex> {
        DynamicDfs::apply_update(self, update)
    }

    fn tree(&self) -> &TreeIndex {
        DynamicDfs::tree(self)
    }

    fn forest_parent(&self, v: Vertex) -> Option<Vertex> {
        DynamicDfs::forest_parent(self, v)
    }

    fn forest_roots(&self) -> Vec<Vertex> {
        DynamicDfs::forest_roots(self)
    }

    fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        DynamicDfs::same_component(self, u, v)
    }

    fn num_vertices(&self) -> usize {
        DynamicDfs::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        DynamicDfs::num_edges(self)
    }

    fn check(&self) -> Result<(), String> {
        DynamicDfs::check(self)
    }

    fn stats(&self) -> StatsReport {
        StatsReport::Parallel(self.last_stats)
    }
}

/// Extract the parent array of a tree index (`parent[root] == root`,
/// `NO_VERTEX` outside the tree).
pub(crate) fn old_parents(idx: &TreeIndex) -> Vec<Vertex> {
    let mut out = vec![NO_VERTEX; idx.capacity()];
    for &v in idx.pre_order_vertices() {
        out[v as usize] = idx.parent(v).unwrap_or(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardfs_graph::generators;
    use pardfs_graph::updates::{random_update_sequence, UpdateMix};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn exercise(graph: Graph, updates: &[Update], strategy: Strategy) -> DynamicDfs {
        let mut dfs = DynamicDfs::with_strategy(&graph, strategy);
        dfs.check().unwrap();
        for (i, u) in updates.iter().enumerate() {
            dfs.apply_update(u);
            dfs.check()
                .unwrap_or_else(|e| panic!("update {i} ({u:?}) broke the DFS tree: {e}"));
        }
        dfs
    }

    #[test]
    fn edge_updates_on_small_graphs_both_strategies() {
        for strategy in [Strategy::Simple, Strategy::Phased] {
            let g = generators::path(12);
            let updates = vec![
                Update::InsertEdge(0, 11),
                Update::InsertEdge(3, 8),
                Update::DeleteEdge(5, 6),
                Update::DeleteEdge(0, 1),
                Update::InsertEdge(1, 6),
            ];
            exercise(g, &updates, strategy);
        }
    }

    #[test]
    fn vertex_updates_on_structured_graphs() {
        for strategy in [Strategy::Simple, Strategy::Phased] {
            let g = generators::caterpillar(6, 3);
            let updates = vec![
                Update::DeleteVertex(2),
                Update::InsertVertex {
                    edges: vec![0, 5, 10],
                },
                Update::DeleteVertex(0),
            ];
            exercise(g, &updates, strategy);
        }
    }

    #[test]
    fn forest_api_reports_components() {
        let g = generators::path(6);
        let mut dfs = DynamicDfs::new(&g);
        assert_eq!(dfs.forest_roots().len(), 1);
        assert!(dfs.same_component(0, 5));
        dfs.apply_update(&Update::DeleteEdge(2, 3));
        dfs.check().unwrap();
        assert_eq!(dfs.forest_roots().len(), 2);
        assert!(!dfs.same_component(0, 5));
        assert!(dfs.same_component(3, 5));
        assert_eq!(dfs.num_edges(), 4);
        // Parent chains never cross the pseudo root.
        for v in 0..6u32 {
            if let Some(p) = dfs.forest_parent(v) {
                assert!(p < 6);
            }
        }
    }

    #[test]
    fn random_mixed_sequences_both_strategies() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for strategy in [Strategy::Simple, Strategy::Phased] {
            for _ in 0..4 {
                let n: usize = rng.gen_range(8..50);
                let m = rng.gen_range(n - 1..(n * (n - 1) / 2).min(3 * n));
                let g = generators::random_connected_gnm(n, m, &mut rng);
                let updates = random_update_sequence(&g, 30, &UpdateMix::default(), &mut rng);
                exercise(g, &updates, strategy);
            }
        }
    }

    #[test]
    fn dense_graph_edge_churn() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_connected_gnm(40, 300, &mut rng);
        let updates = random_update_sequence(&g, 40, &UpdateMix::edges_only(), &mut rng);
        let dfs = exercise(g, &updates, Strategy::Phased);
        assert_eq!(dfs.updates_applied(), 40);
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::broom(20, 10);
        let mut dfs = DynamicDfs::new(&g);
        // Deleting a handle edge forces a real reroot of the lower half.
        dfs.apply_update(&Update::DeleteEdge(5, 6));
        dfs.check().unwrap();
        let s = dfs.last_stats();
        assert_eq!(s.reroot_jobs, 1);
        assert!(s.reroot.relinked_vertices > 0);
        assert!(s.reroot.rounds >= 1);
        assert!(s.total_query_sets() >= 1);
        // Inserting a cross edge between two bristles re-hangs a leaf in O(1).
        dfs.apply_update(&Update::InsertEdge(20, 25));
        dfs.check().unwrap();
        let s = dfs.last_stats();
        assert_eq!(s.reroot_jobs, 1);
        assert_eq!(s.reroot.rounds, 1);
    }
}
