//! The parallel fully dynamic DFS maintainer (Theorem 13), with **incremental
//! maintenance of `D`** under an amortized rebuild policy.
//!
//! Per update: record the update in `D`'s overlay, apply it to the augmented
//! graph, run the reduction (Section 3), reroot the affected subtrees with the
//! parallel engine (Section 4), then **delta-patch** the tree index with the
//! engine's `TreePatch` (`O(|region| · log n)`, [`IndexPolicy`]); a full
//! `O(n)` index rebuild happens only when the patch is not spliceable
//! (vertex churn) or its region outgrows the policy threshold. The `O(m)`
//! structure `D` is *not* rebuilt either: it stays anchored to the tree it
//! was last built on (the *base* tree), queries against paths of the current
//! tree are decomposed into ancestor–descendant segments of the base tree
//! (the Theorem 9 argument, shared with the fault tolerant algorithm), and
//! the overlay absorbs the edge/vertex churn. Only when the overlay outgrows
//! the configured [`RebuildPolicy`] threshold (`c · m / log₂ n` by default)
//! is `D` rebuilt on the current tree — the `O(log n)`-time, `m`-processor
//! preprocessing of Theorem 8, now an amortized rather than per-update event.

use crate::fault::FaultOracle;
use crate::reduction::{reduce_update, ReductionInput};
use crate::reroot::{RerootJob, Rerooter, Strategy};
use crate::stats::UpdateStats;
use pardfs_api::{
    maintain_index, DfsMaintainer, ForestQuery, IndexMaintenanceStats, IndexPolicy, RebuildPolicy,
    RebuildPolicyStats, StatsReport,
};
use pardfs_graph::{Graph, Update, Vertex};
use pardfs_query::{QueryOracle, StructureD};
use pardfs_seq::augment;
use pardfs_seq::augment::AugmentedGraph;
use pardfs_seq::check::check_spanning_dfs_tree;
use pardfs_seq::static_dfs::static_dfs;
use pardfs_tree::rooted::NO_VERTEX;
use pardfs_tree::{TreeIndex, TreePatch};
use std::time::Instant;

/// Parallel fully dynamic DFS of an undirected graph.
///
/// The maintained structure is a DFS tree of the *augmented* graph (user graph
/// plus a pseudo root adjacent to every vertex, Section 2); its children are
/// the roots of a DFS forest of the user graph. The public API speaks user
/// vertex ids throughout.
#[derive(Debug)]
pub struct DynamicDfs {
    aug: AugmentedGraph,
    idx: TreeIndex,
    /// `D`, built on the *base* tree (the current tree as of the last
    /// rebuild) and carrying the overlay of every update applied since.
    d: StructureD,
    /// True while the base tree and the current tree are one and the same
    /// (right after a rebuild), letting queries skip path decomposition.
    d_fresh: bool,
    strategy: Strategy,
    policy: RebuildPolicy,
    policy_stats: RebuildPolicyStats,
    index_policy: IndexPolicy,
    index_stats: IndexMaintenanceStats,
    last_stats: UpdateStats,
    updates_applied: u64,
}

/// Run the reduction and the rerooting engine for one (already applied)
/// update through the given oracle, filling `stats`, `new_par` and the
/// update's `patch`. Shared by the dynamic and fault tolerant maintainers —
/// the only difference between them is which oracle (and which lifetime of
/// `D`) they pass in.
#[allow(clippy::too_many_arguments)] // mirrors reduce_update's surface plus the strategy
pub(crate) fn reduce_and_reroot<O: QueryOracle>(
    idx: &TreeIndex,
    oracle: &O,
    proot: Vertex,
    update: &Update,
    input: &ReductionInput,
    new_par: &mut [Vertex],
    patch: &mut TreePatch,
    stats: &mut UpdateStats,
    strategy: Strategy,
) {
    let jobs: Vec<RerootJob> =
        reduce_update(idx, oracle, proot, update, input, new_par, patch, stats);
    stats.reroot_jobs = jobs.len() as u64;
    let engine = Rerooter::new(idx, oracle, strategy);
    stats.reroot = engine.run(&jobs, new_par, patch);
}

impl DynamicDfs {
    /// Build the maintainer with the default (phased) strategy and the
    /// default amortized rebuild policy.
    pub fn new(user_graph: &Graph) -> Self {
        Self::with_strategy(user_graph, Strategy::Phased)
    }

    /// Build the maintainer with an explicit rerooting strategy and the
    /// default amortized rebuild policy.
    pub fn with_strategy(user_graph: &Graph, strategy: Strategy) -> Self {
        Self::with_config(user_graph, strategy, RebuildPolicy::default())
    }

    /// Build the maintainer with an explicit strategy and rebuild policy.
    pub fn with_config(user_graph: &Graph, strategy: Strategy, policy: RebuildPolicy) -> Self {
        let aug = AugmentedGraph::new(user_graph);
        let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let d = StructureD::build(aug.graph(), idx.clone());
        DynamicDfs {
            aug,
            idx,
            d,
            d_fresh: true,
            strategy,
            policy,
            policy_stats: RebuildPolicyStats::default(),
            index_policy: IndexPolicy::default(),
            index_stats: IndexMaintenanceStats::default(),
            last_stats: UpdateStats::default(),
            updates_applied: 0,
        }
    }

    /// Resume the maintainer from previously captured state: an augmented
    /// graph and a DFS tree of it (a durability checkpoint's contents).
    /// The static DFS is **skipped** — the provided tree *is* the maintained
    /// tree, so a maintainer resumed from a crash-time checkpoint continues
    /// on the exact tree trajectory the crashed one was on. `D` is built
    /// fresh on the provided tree (an empty overlay answers the same
    /// queries a carried-over overlay would — the incremental ≡ fresh-build
    /// equivalence the differential suite pins).
    pub fn from_state(
        aug: AugmentedGraph,
        idx: TreeIndex,
        strategy: Strategy,
        policy: RebuildPolicy,
    ) -> Self {
        assert_eq!(
            idx.root(),
            aug.pseudo_root(),
            "resumed tree must be rooted at the pseudo root"
        );
        assert_eq!(
            idx.capacity(),
            aug.graph().capacity(),
            "resumed tree id space must match the graph"
        );
        let d = StructureD::build(aug.graph(), idx.clone());
        DynamicDfs {
            aug,
            idx,
            d,
            d_fresh: true,
            strategy,
            policy,
            policy_stats: RebuildPolicyStats::default(),
            index_policy: IndexPolicy::default(),
            index_stats: IndexMaintenanceStats::default(),
            last_stats: UpdateStats::default(),
            updates_applied: 0,
        }
    }

    /// The rerooting strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The rebuild policy in use.
    pub fn rebuild_policy(&self) -> RebuildPolicy {
        self.policy
    }

    /// What the rebuild policy has done so far.
    pub fn policy_stats(&self) -> RebuildPolicyStats {
        self.policy_stats
    }

    /// Select when the tree index is delta-patched versus rebuilt.
    pub fn set_index_policy(&mut self, policy: IndexPolicy) {
        self.index_policy = policy;
    }

    /// The index-maintenance policy in use.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// What the index-maintenance policy has done so far.
    pub fn index_stats(&self) -> IndexMaintenanceStats {
        self.index_stats
    }

    /// Number of overlay records currently pending on `D` (0 right after a
    /// rebuild).
    pub fn overlay_updates(&self) -> usize {
        self.d.overlay_updates()
    }

    /// Rebuild `D` on the current tree right now, regardless of the policy,
    /// discarding the overlay. Counted in [`Self::policy_stats`] like a
    /// policy-triggered rebuild.
    pub fn force_rebuild(&mut self) {
        let t = Instant::now();
        self.d = StructureD::build(self.aug.graph(), self.idx.clone());
        self.d_fresh = true;
        self.policy_stats
            .record_rebuild(t.elapsed().as_micros() as u64);
        let (m, n) = (
            self.aug.graph().num_edges(),
            self.aug.graph().num_vertices(),
        );
        self.policy_stats.threshold = self.policy.threshold(m, n).unwrap_or(u64::MAX);
    }

    /// The current DFS tree of the augmented graph (internal ids; the pseudo
    /// root is vertex 0 and user vertex `v` is internal `v + 1`).
    pub fn tree(&self) -> &TreeIndex {
        &self.idx
    }

    /// The augmented graph (internal ids).
    pub fn augmented_graph(&self) -> &Graph {
        self.aug.graph()
    }

    /// The pseudo root (internal id).
    pub fn pseudo_root(&self) -> Vertex {
        self.aug.pseudo_root()
    }

    /// Number of user vertices currently in the graph.
    pub fn num_vertices(&self) -> usize {
        self.aug.user_num_vertices()
    }

    /// Number of user edges currently in the graph.
    pub fn num_edges(&self) -> usize {
        self.aug.user_num_edges()
    }

    /// Parent of user vertex `v` in the maintained DFS forest (`None` for
    /// component roots and vertices not present).
    pub fn forest_parent(&self, v: Vertex) -> Option<Vertex> {
        augment::forest_parent(&self.idx, v)
    }

    /// Roots of the maintained DFS forest (user ids), one per connected
    /// component of the user graph.
    pub fn forest_roots(&self) -> Vec<Vertex> {
        augment::forest_roots(&self.idx)
    }

    /// Are user vertices `u` and `v` in the same connected component? (A DFS
    /// forest answers connectivity for free: same tree ⇔ same component.)
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        augment::same_component(&self.idx, u, v)
    }

    /// Statistics of the most recent update.
    pub fn last_stats(&self) -> UpdateStats {
        self.last_stats
    }

    /// Total number of updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Validate the maintained tree against the augmented graph (used by tests
    /// and debug assertions; `O(n + m)`).
    pub fn check(&self) -> Result<(), String> {
        check_spanning_dfs_tree(self.aug.graph(), &self.idx)
    }

    /// Apply one dynamic update (user ids). Returns the user id of the
    /// inserted vertex for vertex insertions.
    pub fn apply_update(&mut self, update: &Update) -> Option<Vertex> {
        let internal = self.aug.translate(update);
        self.apply_internal(&internal).map(|v| self.aug.to_user(v))
    }

    fn apply_internal(&mut self, update: &Update) -> Option<Vertex> {
        let mut stats = UpdateStats::default();
        let proot = self.aug.pseudo_root();

        // 1. Overlay + graph application (the oracle must describe the updated
        //    edge set during the reroot).
        let mut input = ReductionInput::default();
        let inserted = match update {
            Update::InsertEdge(u, v) => {
                self.d.note_insert_edge(*u, *v);
                self.aug.apply_internal(update)
            }
            Update::DeleteEdge(u, v) => {
                self.d.note_delete_edge(*u, *v);
                self.aug.apply_internal(update)
            }
            Update::DeleteVertex(v) => {
                self.d.note_delete_vertex(*v);
                self.aug.apply_internal(update)
            }
            Update::InsertVertex { .. } => {
                let nv = self.aug.apply_internal(update);
                if let Some(nv) = nv {
                    let nbrs: Vec<Vertex> = self
                        .aug
                        .graph()
                        .neighbors(nv)
                        .iter()
                        .copied()
                        .filter(|&x| x != proot)
                        .collect();
                    self.d.note_insert_vertex(nv, &nbrs);
                    // Also record the pseudo edge added by the augmentation so
                    // queries within this very update can see it.
                    self.d.note_insert_edge(nv, proot);
                    input.inserted = Some(nv);
                    input.inserted_neighbors = nbrs;
                }
                nv
            }
        };

        // 2. Reduction + parallel reroot. While `D` is anchored to the
        //    current tree the oracle is `D` itself; once the trees diverge,
        //    current-tree paths are decomposed into base-tree segments.
        let reroot_start = Instant::now();
        let mut new_par: Vec<Vertex> = old_parents(&self.idx);
        if new_par.len() < self.aug.graph().capacity() {
            new_par.resize(self.aug.graph().capacity(), NO_VERTEX);
        }
        let mut patch = TreePatch::new();
        if self.d_fresh {
            reduce_and_reroot(
                &self.idx,
                &self.d,
                proot,
                update,
                &input,
                &mut new_par,
                &mut patch,
                &mut stats,
                self.strategy,
            );
        } else {
            let oracle = FaultOracle::new(&self.d);
            reduce_and_reroot(
                &self.idx,
                &oracle,
                proot,
                update,
                &input,
                &mut new_par,
                &mut patch,
                &mut stats,
                self.strategy,
            );
        }
        stats.reroot_micros = reroot_start.elapsed().as_micros() as u64;

        // 3. Delta-patch the tree index with the update's rewrites (full
        //    rebuild only when the patch is not spliceable or too large);
        //    leave D anchored to its base tree unless the policy says the
        //    overlay has outgrown it.
        let rebuild_start = Instant::now();
        maintain_index(
            &mut self.idx,
            &patch,
            &new_par,
            proot,
            self.index_policy,
            &mut self.index_stats,
        );
        self.d_fresh = false;
        let (m, n) = (
            self.aug.graph().num_edges(),
            self.aug.graph().num_vertices(),
        );
        if self.policy.should_rebuild(self.d.overlay_updates(), m, n) {
            self.force_rebuild();
        } else {
            self.policy_stats.threshold = self.policy.threshold(m, n).unwrap_or(u64::MAX);
            self.policy_stats.updates_since_rebuild += 1;
        }
        self.policy_stats.overlay_updates = self.d.overlay_updates() as u64;
        stats.rebuild_micros = rebuild_start.elapsed().as_micros() as u64;

        self.last_stats = stats;
        self.updates_applied += 1;
        inserted
    }
}

impl ForestQuery for DynamicDfs {
    fn forest_parent(&self, v: Vertex) -> Option<Vertex> {
        DynamicDfs::forest_parent(self, v)
    }

    fn forest_roots(&self) -> Vec<Vertex> {
        DynamicDfs::forest_roots(self)
    }

    fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        DynamicDfs::same_component(self, u, v)
    }

    fn num_vertices(&self) -> usize {
        DynamicDfs::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        DynamicDfs::num_edges(self)
    }
}

impl DfsMaintainer for DynamicDfs {
    fn backend_name(&self) -> &'static str {
        "parallel"
    }

    fn apply_update(&mut self, update: &Update) -> Option<Vertex> {
        DynamicDfs::apply_update(self, update)
    }

    fn tree(&self) -> &TreeIndex {
        DynamicDfs::tree(self)
    }

    fn augmented_graph(&self) -> &Graph {
        self.aug.graph()
    }

    fn check(&self) -> Result<(), String> {
        DynamicDfs::check(self)
    }

    fn stats(&self) -> StatsReport {
        StatsReport::Parallel {
            engine: self.last_stats,
            rebuild: self.policy_stats,
            index: self.index_stats,
        }
    }
}

/// Extract the parent array of a tree index (`parent[root] == root`,
/// `NO_VERTEX` outside the tree).
pub(crate) fn old_parents(idx: &TreeIndex) -> Vec<Vertex> {
    let mut out = vec![NO_VERTEX; idx.capacity()];
    for &v in idx.pre_order_vertices() {
        out[v as usize] = idx.parent(v).unwrap_or(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardfs_graph::generators;
    use pardfs_graph::updates::{random_update_sequence, UpdateMix};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn exercise(graph: Graph, updates: &[Update], strategy: Strategy) -> DynamicDfs {
        exercise_with_policy(graph, updates, strategy, RebuildPolicy::default())
    }

    fn exercise_with_policy(
        graph: Graph,
        updates: &[Update],
        strategy: Strategy,
        policy: RebuildPolicy,
    ) -> DynamicDfs {
        let mut dfs = DynamicDfs::with_config(&graph, strategy, policy);
        dfs.check().unwrap();
        for (i, u) in updates.iter().enumerate() {
            dfs.apply_update(u);
            dfs.check()
                .unwrap_or_else(|e| panic!("update {i} ({u:?}) broke the DFS tree: {e}"));
        }
        dfs
    }

    #[test]
    fn edge_updates_on_small_graphs_both_strategies() {
        for strategy in [Strategy::Simple, Strategy::Phased] {
            let g = generators::path(12);
            let updates = vec![
                Update::InsertEdge(0, 11),
                Update::InsertEdge(3, 8),
                Update::DeleteEdge(5, 6),
                Update::DeleteEdge(0, 1),
                Update::InsertEdge(1, 6),
            ];
            exercise(g, &updates, strategy);
        }
    }

    #[test]
    fn vertex_updates_on_structured_graphs() {
        for strategy in [Strategy::Simple, Strategy::Phased] {
            let g = generators::caterpillar(6, 3);
            let updates = vec![
                Update::DeleteVertex(2),
                Update::InsertVertex {
                    edges: vec![0, 5, 10],
                },
                Update::DeleteVertex(0),
            ];
            exercise(g, &updates, strategy);
        }
    }

    #[test]
    fn forest_api_reports_components() {
        let g = generators::path(6);
        let mut dfs = DynamicDfs::new(&g);
        assert_eq!(dfs.forest_roots().len(), 1);
        assert!(dfs.same_component(0, 5));
        dfs.apply_update(&Update::DeleteEdge(2, 3));
        dfs.check().unwrap();
        assert_eq!(dfs.forest_roots().len(), 2);
        assert!(!dfs.same_component(0, 5));
        assert!(dfs.same_component(3, 5));
        assert_eq!(dfs.num_edges(), 4);
        // Parent chains never cross the pseudo root.
        for v in 0..6u32 {
            if let Some(p) = dfs.forest_parent(v) {
                assert!(p < 6);
            }
        }
    }

    #[test]
    fn random_mixed_sequences_both_strategies() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for strategy in [Strategy::Simple, Strategy::Phased] {
            for _ in 0..4 {
                let n: usize = rng.gen_range(8..50);
                let m = rng.gen_range(n - 1..(n * (n - 1) / 2).min(3 * n));
                let g = generators::random_connected_gnm(n, m, &mut rng);
                let updates = random_update_sequence(&g, 30, &UpdateMix::default(), &mut rng);
                exercise(g, &updates, strategy);
            }
        }
    }

    #[test]
    fn random_mixed_sequences_every_rebuild_policy() {
        // The maintained tree must stay a valid DFS tree no matter how long
        // the overlay is allowed to grow.
        let mut rng = ChaCha8Rng::seed_from_u64(404);
        for policy in [
            RebuildPolicy::EveryUpdate,
            RebuildPolicy::Amortized { factor: 0.25 },
            RebuildPolicy::Amortized { factor: 4.0 },
            RebuildPolicy::Never,
        ] {
            for _ in 0..3 {
                let n: usize = rng.gen_range(8..50);
                let m = rng.gen_range(n - 1..(n * (n - 1) / 2).min(3 * n));
                let g = generators::random_connected_gnm(n, m, &mut rng);
                let updates = random_update_sequence(&g, 30, &UpdateMix::default(), &mut rng);
                exercise_with_policy(g, &updates, Strategy::Phased, policy);
            }
        }
    }

    #[test]
    fn dense_graph_edge_churn() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_connected_gnm(40, 300, &mut rng);
        let updates = random_update_sequence(&g, 40, &UpdateMix::edges_only(), &mut rng);
        let dfs = exercise(g, &updates, Strategy::Phased);
        assert_eq!(dfs.updates_applied(), 40);
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::broom(20, 10);
        let mut dfs = DynamicDfs::new(&g);
        // Deleting a handle edge forces a real reroot of the lower half.
        dfs.apply_update(&Update::DeleteEdge(5, 6));
        dfs.check().unwrap();
        let s = dfs.last_stats();
        assert_eq!(s.reroot_jobs, 1);
        assert!(s.reroot.relinked_vertices > 0);
        assert!(s.reroot.rounds >= 1);
        assert!(s.total_query_sets() >= 1);
        // Inserting a cross edge between two bristles re-hangs a leaf in O(1).
        dfs.apply_update(&Update::InsertEdge(20, 25));
        dfs.check().unwrap();
        let s = dfs.last_stats();
        assert_eq!(s.reroot_jobs, 1);
        assert_eq!(s.reroot.rounds, 1);
    }

    #[test]
    fn every_update_policy_rebuilds_every_update() {
        let g = generators::broom(15, 5);
        let mut dfs = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::EveryUpdate);
        for (i, u) in [
            Update::DeleteEdge(3, 4),
            Update::InsertEdge(0, 12),
            Update::DeleteEdge(8, 9),
        ]
        .iter()
        .enumerate()
        {
            dfs.apply_update(u);
            let p = dfs.policy_stats();
            assert_eq!(p.rebuilds, i as u64 + 1);
            assert_eq!(p.overlay_updates, 0, "overlay folded into the rebuild");
            assert_eq!(p.updates_since_rebuild, 0);
            assert_eq!(p.threshold, 0);
        }
    }

    #[test]
    fn never_policy_accumulates_overlay_and_never_rebuilds() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::random_connected_gnm(30, 80, &mut rng);
        let updates = random_update_sequence(&g, 25, &UpdateMix::edges_only(), &mut rng);
        let dfs = exercise_with_policy(g, &updates, Strategy::Phased, RebuildPolicy::Never);
        let p = dfs.policy_stats();
        assert_eq!(p.rebuilds, 0);
        assert_eq!(p.total_rebuild_micros, 0);
        assert_eq!(p.threshold, u64::MAX);
        assert_eq!(p.updates_since_rebuild, 25);
        assert_eq!(p.overlay_updates, 25, "one overlay record per edge update");
        assert_eq!(dfs.overlay_updates(), 25);
    }

    #[test]
    fn amortized_policy_crosses_the_threshold_exactly_once_past_it() {
        // n and m chosen so the threshold is small and predictable.
        let g = generators::path(16); // aug: n = 17, m = 31
        let policy = RebuildPolicy::Amortized { factor: 0.5 };
        let mut dfs = DynamicDfs::with_config(&g, Strategy::Phased, policy);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let updates = random_update_sequence(&g, 12, &UpdateMix::edges_only(), &mut rng);
        let mut saw_rebuild = false;
        for u in &updates {
            let before = dfs.policy_stats();
            let overlay_before = dfs.overlay_updates() as u64;
            dfs.apply_update(u);
            dfs.check().unwrap();
            let after = dfs.policy_stats();
            if after.rebuilds > before.rebuilds {
                saw_rebuild = true;
                // The rebuild fired only because this update pushed the
                // overlay strictly past the threshold.
                assert!(overlay_before + 1 > after.threshold || after.threshold == 0);
                assert_eq!(after.overlay_updates, 0);
                assert_eq!(after.updates_since_rebuild, 0);
            } else {
                // Below or at the threshold: the overlay is retained.
                assert!(after.overlay_updates <= after.threshold);
            }
        }
        assert!(
            saw_rebuild,
            "12 edge updates must cross a threshold of ⌈0.5·31/log₂17⌉"
        );
    }

    #[test]
    fn force_rebuild_clears_overlay_and_counts_as_rebuild() {
        let g = generators::path(10);
        let mut dfs = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::Never);
        dfs.apply_update(&Update::DeleteEdge(4, 5));
        dfs.apply_update(&Update::InsertEdge(0, 9));
        assert!(dfs.overlay_updates() > 0);
        let before = dfs.policy_stats();
        assert_eq!(before.rebuilds, 0);
        dfs.force_rebuild();
        let after = dfs.policy_stats();
        assert_eq!(after.rebuilds, 1);
        assert_eq!(after.overlay_updates, 0);
        assert_eq!(
            after.threshold,
            u64::MAX,
            "a manual epoch still reports the configured policy's threshold"
        );
        assert_eq!(dfs.overlay_updates(), 0);
        // The maintainer keeps working from the fresh base tree.
        dfs.apply_update(&Update::DeleteEdge(7, 8));
        dfs.check().unwrap();
    }

    #[test]
    fn policy_stats_in_stats_report_are_populated_and_monotone() {
        let mut rng = ChaCha8Rng::seed_from_u64(909);
        let g = generators::random_connected_gnm(40, 120, &mut rng);
        let updates = random_update_sequence(&g, 30, &UpdateMix::default(), &mut rng);
        let mut dfs = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::EveryUpdate);
        let mut last = RebuildPolicyStats::default();
        for u in &updates {
            dfs.apply_update(u);
            let report = DfsMaintainer::stats(&dfs);
            let p = *report
                .rebuild_policy()
                .expect("parallel reports carry policy stats");
            assert!(p.rebuilds >= last.rebuilds, "rebuild count is monotone");
            assert!(
                p.total_rebuild_micros >= last.total_rebuild_micros,
                "total rebuild time is monotone"
            );
            assert!(p.rebuilds > 0, "EveryUpdate rebuilds on the first update");
            last = p;
        }
        assert_eq!(last.rebuilds, updates.len() as u64);
        assert!(
            last.total_rebuild_micros > 0,
            "30 rebuilds of a 120-edge D must take measurable time"
        );
        // The engine-side timer is populated too.
        let engine = DfsMaintainer::stats(&dfs);
        assert!(engine.engine().is_some());
    }

    #[test]
    fn incremental_and_every_update_agree_on_components() {
        // Differential: the same sequence through an incremental maintainer
        // and a rebuild-every-update maintainer must produce
        // component-identical forests at every step.
        let mut rng = ChaCha8Rng::seed_from_u64(2025);
        let g = generators::random_connected_gnm(35, 90, &mut rng);
        let updates = random_update_sequence(&g, 40, &UpdateMix::default(), &mut rng);
        let mut inc = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::Never);
        let mut full = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::EveryUpdate);
        for (i, u) in updates.iter().enumerate() {
            inc.apply_update(u);
            full.apply_update(u);
            inc.check()
                .unwrap_or_else(|e| panic!("incremental broke at update {i} ({u:?}): {e}"));
            full.check().unwrap();
            assert_eq!(
                inc.forest_roots().len(),
                full.forest_roots().len(),
                "update {i}"
            );
            let cap = inc.augmented_graph().capacity() as u32;
            for a in (0..cap).step_by(3) {
                for b in (1..cap).step_by(4) {
                    assert_eq!(
                        inc.same_component(a.min(b), a.max(b)),
                        full.same_component(a.min(b), a.max(b)),
                        "update {i}: components diverge on ({a},{b})"
                    );
                }
            }
        }
        assert_eq!(inc.policy_stats().rebuilds, 0);
        assert_eq!(full.policy_stats().rebuilds, 40);
    }
}
