//! The reduction of Section 3: a single graph update becomes a set of
//! independent subtree-rerooting jobs.
//!
//! The reduction only needs `O(1)` sets of independent queries on `D`
//! (Theorem 2 / Theorem 11): at most one set to locate, for every affected
//! subtree, the lowest edge towards the path from the anchor vertex to the
//! root. All tree-structural questions (LCA, child-toward, back-edge tests)
//! are local computations on the current tree index.

use crate::reroot::RerootJob;
use crate::stats::UpdateStats;
use pardfs_graph::{Update, Vertex};
use pardfs_query::{QueryOracle, VertexQuery};
use pardfs_tree::rooted::NO_VERTEX;
use pardfs_tree::{TreeIndex, TreePatch};

/// Context of a reduction: which internal vertex was just inserted (for vertex
/// insertions) and which internal vertices it is adjacent to (excluding the
/// pseudo root).
#[derive(Debug, Clone, Default)]
pub struct ReductionInput {
    /// Internal id of the freshly inserted vertex, if the update inserted one.
    pub inserted: Option<Vertex>,
    /// Internal ids of the inserted vertex's real neighbours.
    pub inserted_neighbors: Vec<Vertex>,
}

/// Reduce an update (internal ids) on the DFS tree `idx` (rooted at the pseudo
/// root `proot`) into reroot jobs, applying the trivial parent rewrites
/// (deleted-vertex removal, inserted-vertex attachment) directly to `new_par`
/// and recording them — plus any vertex-set change — into `patch`.
///
/// The graph must already reflect the update; the oracle must reflect it too
/// (deleted edges/vertices masked, inserted edges visible), so that "lowest
/// edge" queries never return a stale edge.
#[allow(clippy::too_many_arguments)] // the full update context plus both output sinks
pub fn reduce_update<O: QueryOracle>(
    idx: &TreeIndex,
    oracle: &O,
    proot: Vertex,
    update: &Update,
    input: &ReductionInput,
    new_par: &mut [Vertex],
    patch: &mut TreePatch,
    stats: &mut UpdateStats,
) -> Vec<RerootJob> {
    match update {
        Update::InsertEdge(u, v) => {
            if idx.is_back_edge(*u, *v) {
                return Vec::new();
            }
            // Reroot the smaller side at its endpoint, hang it from the other.
            let w = idx.lca(*u, *v);
            let cu = idx.child_toward(w, *u);
            let cv = idx.child_toward(w, *v);
            let (sub_root, new_root, attach_parent) = if idx.size(cu) <= idx.size(cv) {
                (cu, *u, *v)
            } else {
                (cv, *v, *u)
            };
            vec![RerootJob {
                sub_root,
                new_root,
                attach_parent,
            }]
        }
        Update::DeleteEdge(u, v) => {
            let (p, c) = if idx.parent(*v) == Some(*u) {
                (*u, *v)
            } else if idx.parent(*u) == Some(*v) {
                (*v, *u)
            } else {
                return Vec::new(); // deleting a back edge leaves the tree intact
            };
            let hits = lowest_edges_from_subtrees(idx, oracle, &[c], p, proot, stats);
            let (new_root, attach_parent) =
                hits[0].expect("the pseudo edges guarantee an attachment for every subtree");
            vec![RerootJob {
                sub_root: c,
                new_root,
                attach_parent,
            }]
        }
        Update::DeleteVertex(u) => {
            let anchor = idx.parent(*u).unwrap_or(proot);
            let children: Vec<Vertex> = idx.children(*u).to_vec();
            let hits = lowest_edges_from_subtrees(idx, oracle, &children, anchor, proot, stats);
            new_par[*u as usize] = NO_VERTEX;
            patch.record_removed(*u);
            children
                .iter()
                .zip(hits)
                .map(|(&c, hit)| {
                    let (new_root, attach_parent) =
                        hit.expect("the pseudo edges guarantee an attachment for every subtree");
                    RerootJob {
                        sub_root: c,
                        new_root,
                        attach_parent,
                    }
                })
                .collect()
        }
        Update::InsertVertex { .. } => {
            let nv = input
                .inserted
                .expect("vertex insertion provides the inserted id");
            let vj = input.inserted_neighbors.first().copied().unwrap_or(proot);
            new_par[nv as usize] = vj;
            patch.record_added(nv);
            patch.assign(nv, vj);
            let mut jobs: Vec<RerootJob> = Vec::new();
            for &vi in input.inserted_neighbors.iter().skip(1) {
                if idx.is_ancestor(vi, vj) {
                    continue; // (nv, vi) will be a back edge
                }
                let a = idx.lca(vi, vj);
                let sub_root = idx.child_toward(a, vi);
                if jobs.iter().any(|j| j.sub_root == sub_root) {
                    continue; // that hanging subtree is already being rerooted
                }
                jobs.push(RerootJob {
                    sub_root,
                    new_root: vi,
                    attach_parent: nv,
                });
            }
            jobs
        }
    }
}

/// One set of independent queries: for every subtree root in `roots`, the
/// lowest edge (nearest to `near`) from that subtree to the tree path between
/// `near` and `far`. Results are aligned with `roots`.
fn lowest_edges_from_subtrees<O: QueryOracle>(
    idx: &TreeIndex,
    oracle: &O,
    roots: &[Vertex],
    near: Vertex,
    far: Vertex,
    stats: &mut UpdateStats,
) -> Vec<Option<(Vertex, Vertex)>> {
    if roots.is_empty() {
        return Vec::new();
    }
    let mut batch: Vec<VertexQuery> = Vec::new();
    let mut tags: Vec<(usize, u32)> = Vec::new(); // (root index, decomposition rank)
    let segments = oracle.decompose_path(idx, near, far);
    for (i, &r) in roots.iter().enumerate() {
        for &w in idx.subtree_vertices(r) {
            for (k, &(a, b)) in segments.iter().enumerate() {
                batch.push(VertexQuery::new(w, a, b));
                tags.push((i, k as u32));
            }
        }
    }
    stats.reduction_query_sets += 1;
    let answers = oracle.answer_batch(&batch);
    // (neighbour order, rank from near) — smaller wins; payload is the edge.
    type LowestKey = (u32, u32);
    let mut best: Vec<Option<(LowestKey, (Vertex, Vertex))>> = vec![None; roots.len()];
    for ((i, k), hit) in tags.iter().zip(&answers) {
        if let Some(h) = hit {
            let key = (*k, h.rank_from_near);
            if best[*i].is_none_or(|(bk, _)| key < bk) {
                best[*i] = Some((key, (h.from, h.on_path)));
            }
        }
    }
    best.into_iter().map(|b| b.map(|(_, e)| e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardfs_graph::generators;
    use pardfs_query::StructureD;
    use pardfs_seq::augment::AugmentedGraph;
    use pardfs_seq::static_dfs::static_dfs;
    use pardfs_tree::TreeIndex;

    /// Build (augmented graph, tree index, D) for a user graph.
    fn setup(user: &pardfs_graph::Graph) -> (AugmentedGraph, TreeIndex, StructureD) {
        let aug = AugmentedGraph::new(user);
        let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let d = StructureD::build(aug.graph(), idx.clone());
        (aug, idx, d)
    }

    #[test]
    fn back_edge_insertion_needs_no_reroot() {
        // Path 0-1-2-3 (user ids); inserting (0,3) on the *tree path* is a back edge.
        let user = generators::path(4);
        let (aug, idx, d) = setup(&user);
        let mut stats = UpdateStats::default();
        let mut new_par = vec![NO_VERTEX; aug.graph().capacity()];
        let mut patch = TreePatch::new();
        let update = aug.translate(&Update::InsertEdge(0, 3));
        let jobs = reduce_update(
            &idx,
            &d,
            aug.pseudo_root(),
            &update,
            &ReductionInput::default(),
            &mut new_par,
            &mut patch,
            &mut stats,
        );
        assert!(jobs.is_empty());
    }

    #[test]
    fn cross_edge_insertion_reroots_the_smaller_side() {
        // Star with centre 0 and leaves 1..4: inserting (1,2) creates a cross
        // edge; the reroot job must cover one of the two leaves.
        let user = generators::star(5);
        let (aug, idx, d) = setup(&user);
        let mut stats = UpdateStats::default();
        let mut new_par = vec![NO_VERTEX; aug.graph().capacity()];
        let mut patch = TreePatch::new();
        let update = aug.translate(&Update::InsertEdge(1, 2));
        let jobs = reduce_update(
            &idx,
            &d,
            aug.pseudo_root(),
            &update,
            &ReductionInput::default(),
            &mut new_par,
            &mut patch,
            &mut stats,
        );
        assert_eq!(jobs.len(), 1);
        let j = jobs[0];
        assert_eq!(
            j.sub_root, j.new_root,
            "a leaf subtree is rerooted at itself"
        );
        assert!(j.new_root == aug.to_internal(1) || j.new_root == aug.to_internal(2));
        assert!(j.attach_parent == aug.to_internal(1) || j.attach_parent == aug.to_internal(2));
        assert_ne!(j.new_root, j.attach_parent);
    }

    #[test]
    fn tree_edge_deletion_attaches_through_a_real_edge_when_possible() {
        // Cycle 0-1-2-3-0: DFS tree from the pseudo root enters at some vertex;
        // deleting a tree edge must re-attach via the remaining cycle edge, not
        // via the pseudo root.
        let user = generators::cycle(4);
        let (mut aug, idx, mut d) = setup(&user);
        // Find a user tree edge to delete.
        let (ui, vi) = (0..4u32)
            .flat_map(|a| (0..4u32).map(move |b| (a, b)))
            .find(|&(a, b)| {
                a < b && user.has_edge(a, b) && {
                    let (ai, bi) = (aug.to_internal(a), aug.to_internal(b));
                    idx.parent(ai) == Some(bi) || idx.parent(bi) == Some(ai)
                }
            })
            .map(|(a, b)| (aug.to_internal(a), aug.to_internal(b)))
            .unwrap();
        d.note_delete_edge(ui, vi);
        let internal = Update::DeleteEdge(ui, vi);
        aug.apply_internal(&internal);
        let mut stats = UpdateStats::default();
        let mut new_par = vec![NO_VERTEX; aug.graph().capacity()];
        let mut patch = TreePatch::new();
        let jobs = reduce_update(
            &idx,
            &d,
            aug.pseudo_root(),
            &internal,
            &ReductionInput::default(),
            &mut new_par,
            &mut patch,
            &mut stats,
        );
        assert_eq!(jobs.len(), 1);
        assert_ne!(
            jobs[0].attach_parent,
            aug.pseudo_root(),
            "the surviving cycle edge should be preferred over the pseudo edge"
        );
        assert_eq!(stats.reduction_query_sets, 1);
    }

    #[test]
    fn deleting_a_cut_vertex_hangs_pieces_from_the_pseudo_root() {
        // Star centre 0: deleting it leaves isolated leaves, which can only
        // attach through pseudo edges.
        let user = generators::star(4);
        let (mut aug, idx, mut d) = setup(&user);
        let centre = aug.to_internal(0);
        d.note_delete_vertex(centre);
        let internal = Update::DeleteVertex(centre);
        aug.apply_internal(&internal);
        let mut stats = UpdateStats::default();
        let mut new_par = vec![NO_VERTEX; aug.graph().capacity()];
        let mut patch = TreePatch::new();
        let jobs = reduce_update(
            &idx,
            &d,
            aug.pseudo_root(),
            &internal,
            &ReductionInput::default(),
            &mut new_par,
            &mut patch,
            &mut stats,
        );
        // The DFS tree from the pseudo root rooted the star at some leaf, so the
        // centre has at least one child subtree to re-attach.
        assert!(!jobs.is_empty());
        for j in &jobs {
            assert_eq!(j.attach_parent, aug.pseudo_root());
        }
        assert_eq!(new_par[centre as usize], NO_VERTEX);
    }

    #[test]
    fn vertex_insertion_groups_neighbours_by_hanging_subtree() {
        // Path 0-1-2-3-4; insert a vertex adjacent to 1, 3 and 4. With the DFS
        // tree being the path itself (rooted near one end), 3 and 4 share a
        // hanging subtree, so at most one reroot job may target it.
        let user = generators::path(5);
        let (mut aug, idx, mut d) = setup(&user);
        let internal_edges: Vec<Vertex> =
            [1u32, 3, 4].iter().map(|&v| aug.to_internal(v)).collect();
        let internal = Update::InsertVertex {
            edges: internal_edges.clone(),
        };
        let nv = aug.apply_internal(&internal).unwrap();
        d.note_insert_vertex(nv, &internal_edges);
        let mut stats = UpdateStats::default();
        let mut new_par = vec![NO_VERTEX; aug.graph().capacity()];
        let mut patch = TreePatch::new();
        let jobs = reduce_update(
            &idx,
            &d,
            aug.pseudo_root(),
            &internal,
            &ReductionInput {
                inserted: Some(nv),
                inserted_neighbors: internal_edges.clone(),
            },
            &mut new_par,
            &mut patch,
            &mut stats,
        );
        assert_eq!(new_par[nv as usize], internal_edges[0]);
        assert!(jobs.len() <= 2);
        let roots: Vec<Vertex> = jobs.iter().map(|j| j.sub_root).collect();
        let dedup: std::collections::HashSet<_> = roots.iter().collect();
        assert_eq!(roots.len(), dedup.len(), "jobs target disjoint subtrees");
        for j in &jobs {
            assert_eq!(j.attach_parent, nv);
        }
    }
}
