//! Distributed dynamic DFS in the CONGEST(B) model (Theorem 16).
//!
//! ```text
//! cargo run --release --example congest_network
//! ```
//!
//! Three network topologies with very different diameters absorb the same
//! kind of updates through the unified maintainer surface
//! (`Backend::Congest { bandwidth }`); the example reads the simulated
//! communication cost (synchronous rounds and messages of at most `B = n/D`
//! words) from each update's `StatsReport` and shows that the round count
//! tracks `D · log^2 n`, as the paper predicts.

use pardfs::congest::network::diameter;
use pardfs::graph::{generators, Graph, Update};
use pardfs::{Backend, MaintainerBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run(name: &str, graph: Graph, updates: &[Update]) {
    let n = graph.num_vertices();
    let d = diameter(&graph).max(1);
    let bandwidth = (n / d).max(1);
    let mut dfs = MaintainerBuilder::new(Backend::Congest { bandwidth }).build(&graph);
    let mut rounds = 0u64;
    let mut messages = 0u64;
    for u in updates {
        dfs.apply_update(u);
        dfs.check().expect("distributed DFS forest must stay valid");
        let report = dfs.stats();
        let cost = report
            .congest()
            .expect("congest backend reports network cost");
        rounds += cost.rounds;
        messages += cost.messages;
    }
    let per_update_rounds = rounds as f64 / updates.len() as f64;
    let log2n = (n as f64).log2();
    println!(
        "{name:<22} n={n:<6} D={d:<4} B={bandwidth:<5} rounds/update={per_update_rounds:>9.1}  \
         D·log²n={:>9.1}  messages/update={:>10.1}",
        d as f64 * log2n * log2n,
        messages as f64 / updates.len() as f64,
    );
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    println!("CONGEST(n/D) dynamic DFS — per-update communication cost\n");

    let updates_for = |g: &Graph, rng: &mut ChaCha8Rng| {
        pardfs::graph::updates::random_update_sequence(
            g,
            10,
            &pardfs::graph::updates::UpdateMix::edges_only(),
            rng,
        )
    };

    // Low diameter: random sparse graph (D ≈ log n).
    let g = generators::random_connected_gnm(1024, 4096, &mut rng);
    let ups = updates_for(&g, &mut rng);
    run("random (D≈log n)", g, &ups);

    // Medium diameter: 2-D grid (D ≈ √n).
    let g = generators::grid(32, 32);
    let ups = updates_for(&g, &mut rng);
    run("grid 32x32 (D≈√n)", g, &ups);

    // High diameter: long-range-augmented path (D ≈ n).
    let g = generators::random_long_range(1024, 256, 8, &mut rng);
    let ups = updates_for(&g, &mut rng);
    run("near-path (D≈n)", g, &ups);

    println!(
        "\nrounds per update grow with the diameter while the message size shrinks (B = n/D),\n\
         matching the O(D log² n) rounds / O(n/D) words trade-off of Theorem 16."
    );
}
