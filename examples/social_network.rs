//! A dynamic "social network" scenario: friendships come and go, accounts are
//! created and deleted, and the application continuously needs
//! connectivity-style queries (are two users connected? which users bridge
//! communities?).
//!
//! ```text
//! cargo run --release --example social_network
//! ```
//!
//! A DFS forest is exactly the right index for this: connectivity is "same
//! tree root", and the tree (plus back edges) supports biconnectivity
//! analysis. The example maintains the forest through the unified
//! `DfsMaintainer` surface under churn and answers queries after every batch.
//!
//! It is also the headline demo for the **amortized rebuild policy**: the
//! same update stream is absorbed by an incremental maintainer (overlay +
//! occasional `D` rebuild, the default), by a maintainer that rebuilds `D`
//! after every update (the pre-incremental behaviour), and by full
//! recomputation from scratch — the timing line at the end shows the
//! incremental maintainer winning on this medium-sized graph.

use pardfs::graph::{generators, Graph, Update};
use pardfs::seq::articulation::articulation_points;
use pardfs::seq::static_dfs::static_dfs;
use pardfs::{Backend, MaintainerBuilder, RebuildPolicy};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // Communities: path-of-cliques ⇒ pronounced bridge structure.
    let graph = generators::path_of_cliques(40, 25); // 1000 users
    let n = graph.num_vertices();
    println!(
        "social graph: {n} users, {} friendships ({} worker thread(s); \
         set PARDFS_THREADS to change)",
        graph.num_edges(),
        rayon::current_num_threads()
    );

    // The maintainer under demo: incremental D with the default amortized
    // rebuild policy (rebuild when overlay > m / log₂ n).
    let mut dfs = MaintainerBuilder::new(Backend::Parallel).build(&graph);
    // The ablation: identical algorithm, but D is rebuilt on every update.
    let mut rebuilder = MaintainerBuilder::new(Backend::Parallel)
        .rebuild_policy(RebuildPolicy::EveryUpdate)
        .build(&graph);
    let mut mirror: Graph = graph.clone();

    let mut incremental_total = 0u128;
    let mut rebuild_total = 0u128;
    let mut static_total = 0u128;
    let mut updates_applied = 0usize;

    for day in 0..10 {
        // Each "day": a few friendships form, a few dissolve, one account is
        // created and one goes away.
        let mut updates: Vec<Update> = Vec::new();
        for _ in 0..5 {
            let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
            if u != v && !mirror.has_edge(u, v) && mirror.is_active(u) && mirror.is_active(v) {
                updates.push(Update::InsertEdge(u, v));
            }
        }
        if let Some((u, v)) = generators::sample_edges(&mirror, 1, &mut rng)
            .first()
            .copied()
        {
            updates.push(Update::DeleteEdge(u, v));
        }
        let friends: Vec<u32> = (0..3)
            .filter_map(|_| {
                let v = rng.gen_range(0..n as u32);
                mirror.is_active(v).then_some(v)
            })
            .collect();
        updates.push(Update::InsertVertex { edges: friends });

        for update in &updates {
            let t = Instant::now();
            dfs.apply_update(update);
            incremental_total += t.elapsed().as_micros();

            let t = Instant::now();
            rebuilder.apply_update(update);
            rebuild_total += t.elapsed().as_micros();

            mirror.apply(update);
            updates_applied += 1;

            // Baseline: full recomputation of a DFS forest of the mirror.
            let t = Instant::now();
            let root = mirror.vertices().next().unwrap();
            let _ = static_dfs(&mirror, root);
            static_total += t.elapsed().as_micros();
        }
        dfs.check().expect("DFS forest must stay valid");
        rebuilder.check().expect("ablation forest must stay valid");

        // Application queries on the maintained forest.
        let components = dfs.forest_roots().len();
        let (a, b) = (0u32, (n - 1) as u32);
        let connected = dfs.same_component(a, b);
        let bridges_hub = articulation_points(&mirror, mirror.vertices().next().unwrap()).len();
        println!(
            "day {day:>2}: {:>3} updates applied, {components} communities, \
             user {a} ↔ user {b}: {}, {} articulation users in the main community",
            updates.len(),
            if connected { "connected" } else { "separated" },
            bridges_hub
        );
    }

    let policy = dfs
        .stats()
        .rebuild_policy()
        .copied()
        .expect("parallel backend reports policy stats");
    println!(
        "\nrebuild policy: {} D rebuilds over {} updates \
         (threshold {}, overlay now {})",
        policy.rebuilds, updates_applied, policy.threshold, policy.overlay_updates,
    );
    println!(
        "cumulative update time: incremental DFS {:.2} ms vs rebuild-every-update {:.2} ms \
         vs full recompute {:.2} ms",
        incremental_total as f64 / 1000.0,
        rebuild_total as f64 / 1000.0,
        static_total as f64 / 1000.0
    );
}
