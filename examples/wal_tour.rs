//! Durability tour: serve a corpus trace with write-ahead logging, kill the
//! server partway through (simulated by dropping it), and recover — first
//! cleanly, then after hand-tearing the WAL's final record the way a real
//! crash would.
//!
//! ```text
//! cargo run --release --example wal_tour
//! ```
//!
//! The tour walks the full durability lifecycle: attach a WAL + checkpoint
//! policy to a server, commit the trace's update batches (watching the
//! checkpointer truncate the log), "crash", recover with per-batch
//! fingerprint verification, and confirm the recovered tree is byte-for-byte
//! the tree an undisturbed replay produces. A second recovery runs against a
//! deliberately torn WAL tail to show the crash path: the half-written
//! record is dropped and the server resumes at the last complete epoch.

use pardfs::scenario::TraceBatch;
use pardfs::{Backend, CheckpointPolicy, DurabilityConfig, MaintainerBuilder, Trace};

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/merge-split-storm_n64_s1001.trace"
    );
    let text = std::fs::read_to_string(path).expect("read the corpus trace");
    let trace = Trace::parse(&text).expect("corpus trace parses");
    let dir = std::env::temp_dir().join(format!("pardfs-wal-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "serving `{}` durably (WAL dir {}): {} updates across {} phases",
        trace.scenario,
        dir.display(),
        trace.num_updates(),
        trace.phases.len()
    );

    // --- Durable serving: every commit is logged before it is published ----
    let builder = MaintainerBuilder::new(Backend::Parallel);
    let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::EveryKEpochs(4));
    let mut server = builder
        .serve_durable(&trace.initial_graph(), &config)
        .expect("fresh durability dir attaches");
    let writer = server.write_handle();
    let batches: Vec<_> = trace
        .phases
        .iter()
        .flat_map(|p| &p.batches)
        .filter_map(|b| match b {
            TraceBatch::Updates(u) => Some(u.clone()),
            TraceBatch::Queries(_) => None,
        })
        .collect();
    println!(
        "\ncommitting {} batches (checkpoint every 4 epochs):",
        batches.len()
    );
    for batch in &batches {
        writer.submit(batch.clone());
        let stats = server.commit().expect("queued batch commits");
        let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        println!(
            "  epoch {:>2}: {:>3} updates -> tree {:016x}  (wal.log now {:>5} bytes)",
            stats.record.epoch, stats.record.updates, stats.record.fingerprint, wal_len
        );
    }
    let live_fp = server.maintainer().tree().fingerprint();
    let last_epoch = server.read_handle().epoch();
    drop(writer);
    drop(server); // ---- crash #1: process gone, state lives only on disk ----

    // --- Clean recovery -----------------------------------------------------
    let recovered = builder.recover(&config).expect("recovery succeeds");
    println!(
        "\nrecovered after crash: checkpoint epoch {}, {} records ({} updates) replayed, epoch {} resumed",
        recovered.stats.checkpoint_epoch,
        recovered.stats.records_replayed,
        recovered.stats.updates_replayed,
        recovered.stats.recovered_epoch
    );
    assert_eq!(recovered.stats.recovered_epoch, last_epoch);
    assert_eq!(
        recovered.server.maintainer().tree().fingerprint(),
        live_fp,
        "the recovered tree is the crashed server's tree"
    );

    // The durability contract is stronger than "same components": the
    // recovered trajectory is the undisturbed one. Replay the whole trace
    // in memory and compare final trees.
    let mut undisturbed = builder.build(&trace.initial_graph());
    for batch in &batches {
        undisturbed.apply_batch(batch);
    }
    assert_eq!(undisturbed.tree().fingerprint(), live_fp);
    println!("  recovered tree == undisturbed replay tree: {live_fp:016x}");
    drop(recovered); // ---- crash #2, this time we damage the WAL ----

    // --- Torn-tail recovery -------------------------------------------------
    let wal_path = dir.join("wal.log");
    let wal = std::fs::read(&wal_path).expect("read wal");
    let torn_at = wal.len() - wal.len().min(17); // chop into the final record
    std::fs::write(&wal_path, &wal[..torn_at]).expect("tear the tail");
    println!(
        "\ntore the WAL mid-record ({} -> {torn_at} bytes); recovering again:",
        wal.len()
    );
    let recovered = builder
        .recover(&config)
        .expect("torn tails are recoverable");
    println!(
        "  dropped {} torn record(s), resumed at epoch {} (last complete)",
        recovered.stats.torn_records_dropped, recovered.stats.recovered_epoch
    );
    assert_eq!(recovered.stats.torn_records_dropped, 1);

    let _ = std::fs::remove_dir_all(&dir);
    println!("\ndurability tour complete.");
}
