//! Fault tolerant DFS for a data-centre fabric (Theorem 14).
//!
//! ```text
//! cargo run --release --example fault_tolerant_datacenter
//! ```
//!
//! A leaf–spine style network is preprocessed once. Afterwards, arbitrary
//! small batches of failures (links or whole switches) arrive; each scenario
//! is absorbed through the unified `DfsMaintainer` batch API
//! (`apply_batch` → `BatchReport`), producing a DFS tree of the surviving
//! network *without* re-reading the whole graph, and the example reports
//! which racks lost connectivity. Scenarios are independent: `reset()`
//! drops the absorbed batch between them while the preprocessed structure
//! `D` is reused unchanged, which is exactly the fault tolerant setting of
//! the paper.

use pardfs::graph::{Graph, Update};
use pardfs::{DfsMaintainer, FaultTolerantDfs, ForestQuery};

/// Build a small leaf–spine fabric: `spines` spine switches, `leaves` leaf
/// switches (each connected to every spine), and `hosts_per_leaf` hosts per
/// leaf. Returns the graph and the id of the first host.
fn leaf_spine(spines: usize, leaves: usize, hosts_per_leaf: usize) -> (Graph, u32) {
    let n = spines + leaves + leaves * hosts_per_leaf;
    let mut g = Graph::new(n);
    let leaf_id = |l: usize| (spines + l) as u32;
    let host_id = |l: usize, h: usize| (spines + leaves + l * hosts_per_leaf + h) as u32;
    for l in 0..leaves {
        for s in 0..spines {
            g.insert_edge(s as u32, leaf_id(l));
        }
        for h in 0..hosts_per_leaf {
            g.insert_edge(leaf_id(l), host_id(l, h));
        }
    }
    (g, host_id(0, 0))
}

fn main() {
    let (fabric, first_host) = leaf_spine(4, 16, 24);
    println!(
        "fabric: {} switches+hosts, {} links",
        fabric.num_vertices(),
        fabric.num_edges()
    );

    let mut ft = FaultTolerantDfs::new(&fabric);
    println!(
        "preprocessed once: structure D occupies {} words (O(m))\n",
        ft.structure_words()
    );

    let scenarios: Vec<(&str, Vec<Update>)> = vec![
        ("single uplink failure", vec![Update::DeleteEdge(0, 4)]),
        ("spine switch 0 failure", vec![Update::DeleteVertex(0)]),
        (
            "leaf switch failure isolates its rack",
            vec![Update::DeleteVertex(4)],
        ),
        (
            "correlated failures: two spines and an uplink",
            vec![
                Update::DeleteVertex(0),
                Update::DeleteVertex(1),
                Update::DeleteEdge(2, 5),
            ],
        ),
        (
            "maintenance: drain a leaf, add a replacement switch",
            vec![
                Update::DeleteVertex(5),
                Update::InsertVertex {
                    edges: vec![0, 1, 2, 3],
                },
            ],
        ),
    ];

    for (name, updates) in scenarios {
        let report = ft.apply_batch(&updates);
        ft.check().expect("the recovered tree must be a DFS tree");
        // Count nodes cut off from the first host's component: the unified
        // forest queries answer connectivity directly in user ids. The id
        // space is the maintained tree's capacity minus the pseudo root, so
        // switches inserted by the scenario itself are covered too.
        let roots: std::collections::HashSet<u32> = ft.forest_roots().into_iter().collect();
        let user_ids = 0..(DfsMaintainer::tree(&ft).capacity() as u32 - 1);
        let cut_off = user_ids
            .filter(|&v| ft.forest_parent(v).is_some() || roots.contains(&v))
            .filter(|&v| !ft.same_component(first_host, v))
            .count();
        println!(
            "{name:<48} -> {} updates, {} query sets, {} nodes outside the main component",
            report.applied(),
            report.total_query_sets(),
            cut_off
        );
        // Next scenario starts from the intact fabric again; D is untouched.
        ft.reset();
    }

    println!("\nthe preprocessed structure was never rebuilt between scenarios.");
}
