//! Serving tour: replay the checked-in read-mostly corpus trace through the
//! epoch-snapshot serving layer — four concurrent readers against a
//! group-committing writer — then route the same trace through a sharded
//! replica group.
//!
//! ```text
//! cargo run --release --example serve_tour
//! ```
//!
//! The first half drives the [`ConcurrentScenarioRunner`]: one writer turns
//! every recorded update batch into one group-commit epoch while four reader
//! threads replay the trace's query batches against live snapshots, keeping
//! a torn-read census. It prints the server's epoch log (commit sizes,
//! post-commit graph, per-epoch tree fingerprints) and the aggregate read
//! throughput. The second half commits the same batches through a 3-shard
//! [`ShardRouter`] and shows the v1 routing rules: replicated writes land
//! every shard on the same tree, reads route by component affinity.

use pardfs::scenario::TraceBatch;
use pardfs::{Backend, ConcurrentScenarioRunner, MaintainerBuilder, Trace};

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/read-mostly_n64_s1005.trace"
    );
    let text = std::fs::read_to_string(path).expect("read the corpus trace");
    let trace = Trace::parse(&text).expect("corpus trace parses");
    println!(
        "serving `{}` (seed {}): {} initial vertices, {} edges, {} updates, {} queries",
        trace.scenario,
        trace.seed,
        trace.n,
        trace.m(),
        trace.num_updates(),
        trace.num_queries()
    );

    // --- One server, four readers -----------------------------------------
    let readers = 4;
    let dfs = MaintainerBuilder::new(Backend::Parallel).build(&trace.initial_graph());
    let outcome = ConcurrentScenarioRunner::new(&trace, readers).run(dfs);
    assert_eq!(outcome.torn_snapshots, 0, "a reader saw a torn snapshot");

    println!(
        "\nepoch log of the [{}] server ({} readers racing the commits):",
        outcome.backend, outcome.readers
    );
    println!(
        "  {:>5} {:>7} {:>11} {:>9} {:>7} {:>7}  tree fingerprint",
        "epoch", "updates", "submissions", "µs", "|V|", "|E|"
    );
    for e in &outcome.epochs {
        println!(
            "  {:>5} {:>7} {:>11} {:>9} {:>7} {:>7}  {:016x}",
            e.epoch, e.updates, e.submissions, e.micros, e.num_vertices, e.num_edges, e.fingerprint
        );
    }
    println!(
        "\n{} queries answered by {} readers in {} full passes over {:.1} ms of serving:",
        outcome.queries_answered,
        outcome.readers,
        outcome.reader_passes,
        outcome.wall_micros as f64 / 1e3
    );
    println!(
        "  {:.0} queries/sec aggregate, {} torn snapshots, final tree {:016x}",
        outcome.queries_per_sec(),
        outcome.torn_snapshots,
        outcome.final_fingerprint
    );

    // --- The same batches through a 3-shard replica group ------------------
    let graph = trace.initial_graph();
    let mut router = MaintainerBuilder::new(Backend::Parallel)
        .shards(3)
        .serve(&graph);
    println!(
        "\nbroadcast-committing the same batches through {} shards:",
        router.num_shards()
    );
    let mut epochs = 0u64;
    for batch in trace.phases.iter().flat_map(|p| &p.batches) {
        let TraceBatch::Updates(updates) = batch else {
            continue;
        };
        let commits = router.commit(updates);
        epochs += 1;
        let first = &commits[0].record;
        assert!(
            commits
                .iter()
                .all(|c| c.record.fingerprint == first.fingerprint),
            "replicated shards must agree"
        );
        println!(
            "  epoch {:>2}: {:>3} updates × {} shards -> tree {:016x} on every shard",
            first.epoch,
            first.updates,
            commits.len(),
            first.fingerprint
        );
    }
    let reference = router.read_handle(0).snapshot();
    let sample: Vec<_> = (0..6).map(|v| (v, router.shard_for(v))).collect();
    println!("  after {epochs} epochs: component-affinity routing of vertices 0..6 -> {sample:?}");
    assert_eq!(
        reference.fingerprint(),
        outcome.final_fingerprint,
        "the sharded replay lands on the single-server tree"
    );
    println!(
        "  shard 0 final tree {:016x} == concurrent replay's final tree (replicas are exact)",
        reference.fingerprint()
    );
}
