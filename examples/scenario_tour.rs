//! Scenario tour: record every named scenario family and replay it through
//! two backends, printing per-phase roll-ups.
//!
//! ```text
//! cargo run --release --example scenario_tour
//! ```
//!
//! For each of the six scenario families (preferential-attachment growth,
//! merge/split storms, hub-death cascades, deep-path reroot stressors,
//! read-mostly service, vertex churn) this records a seeded trace, replays
//! it on the parallel and sequential backends through the one
//! `ScenarioRunner`, and prints what each phase cost: updates, queries,
//! query sets, relinked vertices, and how the index was maintained (patch
//! splices vs full rebuilds). The backend-independent fingerprints are
//! asserted equal across the two backends — the same check the corpus CI
//! job applies to every checked-in trace.

use pardfs::{Backend, MaintainerBuilder, Scenario};

fn main() {
    let n = 256;
    println!(
        "scenario tour at n ≈ {n} (effective workers: {})",
        rayon::current_num_threads()
    );
    for (i, scenario) in Scenario::all().into_iter().enumerate() {
        let trace = scenario.record(n, 7000 + i as u64);
        println!(
            "\n=== {} — {} ===\n    {} initial vertices, {} edges, {} updates, {} queries, \
             {} phases",
            scenario.name(),
            scenario.description(),
            trace.n,
            trace.m(),
            trace.num_updates(),
            trace.num_queries(),
            trace.phases.len()
        );
        let mut reference = None;
        for backend in [Backend::Parallel, Backend::Sequential] {
            let (dfs, outcome) = MaintainerBuilder::new(backend).run_scenario(&trace);
            dfs.check().expect("replay must leave a valid DFS tree");
            println!(
                "  [{}] {:.1} µs/update, final tree {:016x}",
                outcome.backend,
                outcome.mean_micros_per_update(),
                outcome.tree_fingerprint
            );
            println!(
                "    {:<12} {:>7} {:>7} {:>9} {:>9} {:>8} {:>9}",
                "phase", "updates", "queries", "sets", "relinked", "patches", "rebuilds"
            );
            for phase in &outcome.phases {
                println!(
                    "    {:<12} {:>7} {:>7} {:>9} {:>9} {:>8} {:>9}",
                    phase.name,
                    phase.rollup.updates,
                    phase.queries,
                    phase.rollup.query_sets,
                    phase.rollup.relinked_vertices,
                    phase.index.patches_applied,
                    phase.index.full_rebuilds
                );
            }
            match reference {
                None => {
                    reference = Some((outcome.components_fingerprint, outcome.queries_fingerprint))
                }
                Some(expected) => assert_eq!(
                    (outcome.components_fingerprint, outcome.queries_fingerprint),
                    expected,
                    "backend-independent fingerprints must agree"
                ),
            }
        }
    }
    println!("\nall scenarios replayed; backend-independent fingerprints agreed everywhere");
}
