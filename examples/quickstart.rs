//! Quickstart: maintain a DFS forest of a changing graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random sparse graph, applies a mixed stream of edge and vertex
//! updates, and after every update prints a one-line summary of what the
//! parallel dynamic-DFS maintainer did (how many subtrees were rerooted, how
//! many engine rounds and query sets it took) while asserting that the
//! maintained tree stays a valid DFS tree.

use pardfs::graph::generators;
use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::{DynamicDfs, Strategy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 2_000;
    let m = 8_000;
    let graph = generators::random_connected_gnm(n, m, &mut rng);
    println!("initial graph: {n} vertices, {m} edges");

    let mut dfs = DynamicDfs::with_strategy(&graph, Strategy::Phased);
    println!(
        "initial DFS forest built: {} component root(s)\n",
        dfs.forest_roots().len()
    );

    let updates = random_update_sequence(&graph, 25, &UpdateMix::default(), &mut rng);
    for (i, update) in updates.iter().enumerate() {
        dfs.apply_update(update);
        dfs.check().expect("the maintained tree must stay a DFS tree");
        let s = dfs.last_stats();
        println!(
            "update {i:>2} {:<14} jobs={} rounds={} query_sets={} relinked={} components={}",
            format!("{:?}", update.kind()),
            s.reroot_jobs,
            s.reroot.rounds,
            s.total_query_sets(),
            s.reroot.relinked_vertices,
            dfs.forest_roots().len(),
        );
    }

    println!(
        "\nfinal graph: {} vertices, {} edges, {} component(s)",
        dfs.num_vertices(),
        dfs.num_edges(),
        dfs.forest_roots().len()
    );
    println!("every update was absorbed without recomputing the DFS tree from scratch.");
}
