//! Quickstart: maintain a DFS forest of a changing graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random sparse graph, selects a backend through the
//! `MaintainerBuilder`, applies a mixed stream of edge and vertex updates,
//! and after every update prints a one-line summary of what the maintainer
//! did (how many subtrees were rerooted, how many query sets it took) while
//! the builder's checked mode asserts the tree stays a valid DFS tree.
//!
//! Change `Backend::Parallel` to `Backend::Sequential`, `Backend::Streaming`,
//! `Backend::Congest { bandwidth: 8 }` or `Backend::FaultTolerant` — the rest
//! of the program is identical: that is the point of the unified
//! `DfsMaintainer` surface.

use pardfs::graph::generators;
use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::{Backend, CheckMode, MaintainerBuilder, Strategy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 2_000;
    let m = 8_000;
    let graph = generators::random_connected_gnm(n, m, &mut rng);
    println!("initial graph: {n} vertices, {m} edges");

    let mut dfs = MaintainerBuilder::new(Backend::Parallel)
        .strategy(Strategy::Phased)
        .check_mode(CheckMode::EveryUpdate) // panic loudly if the tree breaks
        .build(&graph);
    println!(
        "initial DFS forest built with the {} backend: {} component root(s)",
        dfs.backend_name(),
        dfs.forest_roots().len()
    );
    // The executor is genuinely parallel; the worker count comes from
    // `PARDFS_THREADS` (or the machine), or per-maintainer via
    // `MaintainerBuilder::num_threads`.
    println!(
        "parallel sections run on {} worker thread(s)\n",
        rayon::current_num_threads()
    );

    let updates = random_update_sequence(&graph, 25, &UpdateMix::default(), &mut rng);
    for (i, update) in updates.iter().enumerate() {
        dfs.apply_update(update);
        let report = dfs.stats();
        println!(
            "update {i:>2} {:<14} jobs={} query_sets={} relinked={} components={}",
            format!("{:?}", update.kind()),
            report.reroot_jobs(),
            report.total_query_sets(),
            report.relinked_vertices(),
            dfs.forest_roots().len(),
        );
    }

    println!(
        "\nfinal graph: {} vertices, {} edges, {} component(s)",
        dfs.num_vertices(),
        dfs.num_edges(),
        dfs.forest_roots().len()
    );

    // The index-maintenance census: how many updates were absorbed by
    // splicing a TreePatch into the tree index versus rebuilding it (vertex
    // churn always rebuilds; oversized regions fall back per the policy).
    let idx = *dfs.stats().index_maintenance();
    println!(
        "tree index: {} patches spliced ({} vertices touched), {} full rebuilds \
         ({} of them fallbacks) — {:.0}% of updates delta-patched",
        idx.patches_applied,
        idx.vertices_touched,
        idx.full_rebuilds,
        idx.fallback_rebuilds,
        idx.patch_rate() * 100.0,
    );
    println!("every update was absorbed without recomputing the DFS tree from scratch.");
}
