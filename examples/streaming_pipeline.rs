//! Semi-streaming dynamic DFS (Theorem 15): maintain a DFS forest of a graph
//! that only exists as an edge stream, with O(n) local memory.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```
//!
//! The scenario mimics a log-processing pipeline: the edge set lives in an
//! external store that can only be scanned front-to-back (a "pass"), while the
//! service keeps just the DFS forest in RAM. The maintainer is built through
//! the unified builder (`Backend::Streaming`); the per-update `StatsReport`
//! exposes both the engine view (model passes = query sets) and the
//! stream-access view (raw passes, edges scanned) of the same update, and the
//! example checks the count stays within the `O(log^2 n)` envelope of the
//! paper.

use pardfs::graph::generators;
use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::{DfsMaintainer, StreamingDynamicDfs};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = 3_000;
    let m = 12_000;
    let graph = generators::random_connected_gnm(n, m, &mut rng);
    // Concrete construction: `resident_words` is a streaming-model quantity
    // that has no place on the backend-agnostic trait. Everything else below
    // goes through the unified `DfsMaintainer` surface.
    let mut s = StreamingDynamicDfs::new(&graph);
    println!(
        "stream: {n} vertices, {m} edges; resident state: {} words (O(n))\n",
        s.resident_words()
    );

    let updates = random_update_sequence(&graph, 20, &UpdateMix::default(), &mut rng);
    let log2n = (n as f64).log2();
    let envelope = log2n * log2n;

    println!(
        "{:<4} {:<14} {:>14} {:>14} {:>14} {:>12}",
        "#", "update", "model passes", "raw batches", "edges scanned", "envelope"
    );
    let mut total_passes = 0u64;
    let mut total_edges = 0u64;
    for (i, u) in updates.iter().enumerate() {
        s.apply_update(u);
        s.check().expect("streamed DFS forest must stay valid");
        let report = s.stats();
        let stream = *report
            .stream()
            .expect("streaming backend reports stream stats");
        total_passes += stream.passes;
        total_edges += stream.edges_scanned;
        println!(
            "{:<4} {:<14} {:>14} {:>14} {:>14} {:>12.0}",
            i,
            format!("{:?}", u.kind()),
            report.total_query_sets(),
            stream.passes,
            stream.edges_scanned,
            envelope
        );
        assert!(
            (report.total_query_sets() as f64) < 20.0 * envelope,
            "pass count escaped the O(log^2 n) envelope"
        );
    }

    println!(
        "\ntotals: {total_passes} passes, {total_edges} edges scanned (budget O(n) = {n} resident words)",
    );
}
