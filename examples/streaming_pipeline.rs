//! Semi-streaming dynamic DFS (Theorem 15): maintain a DFS forest of a graph
//! that only exists as an edge stream, with O(n) local memory.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```
//!
//! The scenario mimics a log-processing pipeline: the edge set lives in an
//! external store that can only be scanned front-to-back (a "pass"), while the
//! service keeps just the DFS forest in RAM. After every update the example
//! reports how many passes were needed and checks that the count stays within
//! the `O(log^2 n)` envelope of the paper.

use pardfs::graph::generators;
use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::StreamingDynamicDfs;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = 3_000;
    let m = 12_000;
    let graph = generators::random_connected_gnm(n, m, &mut rng);
    let mut s = StreamingDynamicDfs::new(&graph);
    println!(
        "stream: {n} vertices, {m} edges; resident state: {} words (O(n))\n",
        s.resident_words()
    );

    let updates = random_update_sequence(&graph, 20, &UpdateMix::default(), &mut rng);
    let log2n = (n as f64).log2();
    let envelope = log2n * log2n;

    println!(
        "{:<4} {:<14} {:>14} {:>14} {:>14} {:>12}",
        "#", "update", "model passes", "raw batches", "edges scanned", "envelope"
    );
    for (i, u) in updates.iter().enumerate() {
        s.apply_update(u);
        s.check().expect("streamed DFS forest must stay valid");
        let engine = s.last_update_stats();
        let stream = s.last_stream_stats();
        println!(
            "{:<4} {:<14} {:>14} {:>14} {:>14} {:>12.0}",
            i,
            format!("{:?}", u.kind()),
            engine.total_query_sets(),
            stream.passes,
            stream.edges_scanned,
            envelope
        );
        assert!(
            (engine.total_query_sets() as f64) < 20.0 * envelope,
            "pass count escaped the O(log^2 n) envelope"
        );
    }

    let total = s.total_stream_stats();
    println!(
        "\ntotals: {} passes, {} edges scanned, peak partial-result words {} (budget O(n) = {})",
        total.passes, total.edges_scanned, total.peak_partial_words, n
    );
}
