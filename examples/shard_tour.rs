//! Sharding tour: replay the checked-in partition-storm corpus trace through
//! both sharded routing modes and watch the difference — the replicated v1
//! [`ShardRouter`] broadcasts every batch to every shard, the partitioned v2
//! [`PartitionedRouter`] routes each update to the shard that owns its
//! component and migrates state when a cross-shard edge merges two
//! components (normative spec: `docs/SHARDING.md`).
//!
//! ```text
//! cargo run --release --example shard_tour
//! ```
//!
//! The partition-storm trace starts from disjoint clusters and bridges them
//! in waves, so the partitioned run is forced through the full merge
//! machinery: component extraction on the losing shard, byte-exact state
//! transfer, resume on the winner. The tour prints the routed epoch log
//! (updates routed, id-allocation echoes, migrations), the per-shard
//! ownership census, and the write-amplification comparison against the
//! replicated broadcast — ending with the determinism check: both modes,
//! and an unsharded replay, land on the same forest fingerprint.

use pardfs::scenario::TraceBatch;
use pardfs::{Backend, MaintainerBuilder, Trace};

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/partition-storm_n64_s1006.trace"
    );
    let text = std::fs::read_to_string(path).expect("read the corpus trace");
    let trace = Trace::parse(&text).expect("corpus trace parses");
    println!(
        "sharding `{}` (seed {}): {} initial vertices, {} edges, {} updates",
        trace.scenario,
        trace.seed,
        trace.n,
        trace.m(),
        trace.num_updates(),
    );
    let graph = trace.initial_graph();
    let batches: Vec<&Vec<_>> = trace
        .phases
        .iter()
        .flat_map(|p| &p.batches)
        .filter_map(|b| match b {
            TraceBatch::Updates(us) => Some(us),
            TraceBatch::Queries(_) => None,
        })
        .collect();

    // --- Unsharded reference ------------------------------------------------
    let mut reference = MaintainerBuilder::new(Backend::Parallel).build(&graph);
    for batch in &batches {
        reference.apply_batch(batch);
    }
    let reference_fingerprint = reference.tree().fingerprint();
    println!("unsharded replay final forest: {reference_fingerprint:016x}");

    // --- Partitioned (v2): routed commits, merge migrations -----------------
    let k = 2;
    let mut router = MaintainerBuilder::new(Backend::Parallel)
        .partitioned_shards(k)
        .serve_partitioned(&graph);
    println!(
        "\nrouting the same batches through {} partitioned shards (initial ownership {:?}):",
        router.num_shards(),
        router.ownership().counts()
    );
    println!(
        "  {:>5} {:>7} {:>7} {:>7} {:>6} {:>6}  assembled forest",
        "epoch", "updates", "routed", "echoes", "migr", "moved"
    );
    for batch in &batches {
        let record = router.commit(batch).expect("corpus batches are non-empty");
        println!(
            "  {:>5} {:>7} {:>7} {:>7} {:>6} {:>6}  {:016x}",
            record.epoch,
            record.updates,
            record.routed,
            record.echoes,
            record.migrations,
            record.migrated_vertices,
            record.fingerprint
        );
    }
    let stats = router.stats().clone();
    println!(
        "  final ownership {:?}, {} migrations moved {} vertices across shards",
        router.ownership().counts(),
        stats.migrations,
        stats.migrated_vertices
    );
    let view = router.read_handle().view();
    assert_eq!(view.recompute_fingerprint(), view.fingerprint());
    assert_eq!(
        view.fingerprint(),
        reference_fingerprint,
        "partitioned replay must land on the unsharded forest"
    );

    // --- Replicated (v1): broadcast commits ---------------------------------
    let mut broadcast = MaintainerBuilder::new(Backend::Parallel)
        .shards(k)
        .serve(&graph);
    for batch in &batches {
        let commits = broadcast.commit(batch);
        assert!(
            commits
                .iter()
                .all(|c| c.record.fingerprint == commits[0].record.fingerprint),
            "replicated shards must agree"
        );
    }
    let replicated_fingerprint = broadcast.read_handle(0).snapshot().fingerprint();
    assert_eq!(replicated_fingerprint, reference_fingerprint);

    // --- Write amplification -----------------------------------------------
    let total = trace.num_updates() as u64;
    println!(
        "\nwrite amplification over {} distinct updates at k = {k}:",
        total
    );
    println!(
        "  replicated  (v1): {total} applied per shard ({} total, {k}.00x)",
        total * k as u64
    );
    println!(
        "  partitioned (v2): {} applied on the busiest shard, {:?} per shard \
         ({} total incl. echoes, {:.2}x)",
        stats.max_applied_per_shard(),
        stats.applied_per_shard,
        stats.total_applied(),
        stats.total_applied() as f64 / total as f64
    );
    println!(
        "\nall three replays agree on the final forest {reference_fingerprint:016x} — \
         routing is an implementation detail, the forest is the contract"
    );
}
