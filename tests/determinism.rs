//! Cross-thread-count determinism suite.
//!
//! The vendored `rayon` executor is genuinely multi-threaded, and its module
//! docs promise that results are **identical across thread counts** for the
//! operations this workspace uses (order-preserving collects, exact
//! reductions, left-tie-broken minima, stable sorts, per-element-disjoint
//! `for_each` bodies). That promise is load-bearing: a backend whose answer
//! depends on the thread count has a data race or an order-sensitive
//! combine, which is exactly the class of bug that otherwise only surfaces
//! as a rare nightly flake.
//!
//! Every test here drives a backend through the same seeded workload under
//! explicit 1-, 2- and 4-thread pools and pins:
//!
//! * the final forest (every vertex's parent and the root set) — not merely
//!   "some valid DFS tree", the *same* tree;
//! * the per-update structural [`StatsReport`] fingerprint (query sets,
//!   relinked vertices, reroot jobs/rounds, index-maintenance and rebuild
//!   censuses, streaming passes, CONGEST rounds/messages/words). Wall-clock
//!   fields are deliberately excluded — they are the only quantity allowed
//!   to vary with the thread count.
//!
//! The CI thread-matrix job additionally runs the whole workspace suite
//! under `PARDFS_THREADS=1,2,4`, which routes every *other* test through
//! the same three pool sizes.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{generators, Graph, Update, Vertex};
use pardfs::{Backend, MaintainerBuilder, Scenario, StatsReport, Strategy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The thread counts the suite compares (also the CI matrix axis).
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Everything observable about one drive that must not depend on threads.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    parents: Vec<Option<Vertex>>,
    roots: Vec<Vertex>,
    fingerprints: Vec<Vec<u64>>,
}

/// Structural (non-timing) projection of a [`StatsReport`].
fn fingerprint(report: &StatsReport) -> Vec<u64> {
    let index = report.index_maintenance();
    let mut out = vec![
        report.total_query_sets(),
        report.relinked_vertices(),
        report.reroot_jobs(),
        index.patches_applied,
        index.full_rebuilds,
        index.fallback_rebuilds,
        index.vertices_touched,
    ];
    if let Some(engine) = report.engine() {
        out.extend([
            engine.reduction_query_sets,
            engine.reroot.rounds,
            engine.reroot.query_sets,
            engine.reroot.query_batches,
            engine.reroot.queries,
            engine.reroot.components,
            engine.reroot.trail_attachments,
        ]);
    }
    if let Some(policy) = report.rebuild_policy() {
        out.extend([policy.rebuilds, policy.overlay_updates]);
    }
    if let Some(stream) = report.stream() {
        out.extend([stream.passes, stream.edges_scanned, stream.queries]);
    }
    if let Some(congest) = report.congest() {
        out.extend([
            congest.rounds,
            congest.messages,
            congest.words,
            congest.broadcast_phases,
        ]);
    }
    out
}

/// Drive `builder` over `updates` inside an explicit `threads`-wide pool.
fn drive(builder: MaintainerBuilder, graph: &Graph, updates: &[Update], threads: usize) -> Outcome {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build test pool");
    pool.install(|| {
        let mut dfs = builder.build(graph);
        let mut fingerprints = Vec::with_capacity(updates.len());
        for update in updates {
            dfs.apply_update(update);
            fingerprints.push(fingerprint(&dfs.stats()));
        }
        dfs.check().expect("maintained tree must stay a DFS tree");
        let parents = (0..dfs.num_vertices() as Vertex)
            .map(|v| dfs.forest_parent(v))
            .collect();
        Outcome {
            parents,
            roots: dfs.forest_roots(),
            fingerprints,
        }
    })
}

/// Pin `builder`'s outcome identical across [`THREAD_COUNTS`].
fn assert_thread_count_invariant(
    label: &str,
    builder: MaintainerBuilder,
    graph: &Graph,
    updates: &[Update],
) {
    let baseline = drive(builder, graph, updates, THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let outcome = drive(builder, graph, updates, threads);
        assert_eq!(
            baseline.parents, outcome.parents,
            "{label}: final tree diverged at {threads} threads"
        );
        assert_eq!(
            baseline.roots, outcome.roots,
            "{label}: forest roots diverged at {threads} threads"
        );
        for (i, (a, b)) in baseline
            .fingerprints
            .iter()
            .zip(&outcome.fingerprints)
            .enumerate()
        {
            assert_eq!(
                a, b,
                "{label}: stats fingerprint of update {i} diverged at {threads} threads"
            );
        }
    }
}

/// Seeded mixed workload (edge + vertex churn) over a given graph.
fn workload(graph: &Graph, updates: usize, seed: u64) -> Vec<Update> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    random_update_sequence(graph, updates, &UpdateMix::default(), &mut rng)
}

#[test]
fn every_backend_is_thread_count_invariant() {
    let mut rng = ChaCha8Rng::seed_from_u64(1701);
    let graph = generators::random_connected_gnm(600, 2400, &mut rng);
    let updates = workload(&graph, 40, 99);
    for backend in Backend::all_default() {
        let builder = MaintainerBuilder::new(backend);
        assert_thread_count_invariant(&format!("{backend:?}"), builder, &graph, &updates);
    }
}

#[test]
fn both_strategies_are_thread_count_invariant_on_adversarial_shapes() {
    // Brooms and near-paths drive the engine through its deepest round
    // structure — the most reroot components in flight at once.
    let graph = generators::broom(300, 300);
    let updates = workload(&graph, 30, 4242);
    for strategy in [Strategy::Simple, Strategy::Phased] {
        let builder = MaintainerBuilder::new(Backend::Parallel).strategy(strategy);
        assert_thread_count_invariant(&format!("{strategy:?}"), builder, &graph, &updates);
    }
}

#[test]
fn large_parallel_workload_is_thread_count_invariant() {
    // Large enough to cross the PRAM primitives' parallel thresholds
    // (par-scan, par-sort at n ≥ 4096) and the batched-query threshold, so
    // the real executor paths — not the sequential small-input fallbacks —
    // are the thing being compared.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let graph = generators::random_connected_gnm(5000, 20000, &mut rng);
    let updates = workload(&graph, 10, 31);
    let builder = MaintainerBuilder::new(Backend::Parallel);
    assert_thread_count_invariant("parallel/n=5000", builder, &graph, &updates);
}

#[test]
fn scenario_replay_is_thread_count_invariant_for_every_backend() {
    // The scenario engine's whole regression story rests on this: a trace
    // replayed through `ScenarioRunner` must produce the same structural
    // outcome — final tree, backend-independent query answers, per-phase
    // stats roll-ups — at every pool size, for every backend. (The corpus
    // CI job then compares 1- and 4-thread replays across *processes*; this
    // test pins the same invariant in-process, with 2 threads included.)
    for (scenario, seed) in [
        (Scenario::DeepPathStress, 17u64),
        (Scenario::VertexChurn, 18),
        (Scenario::MergeSplitStorm, 19),
    ] {
        let trace = scenario.record(200, seed);
        for backend in Backend::all_default() {
            let replay = |threads: usize| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("build test pool");
                pool.install(|| {
                    let (_, outcome) = MaintainerBuilder::new(backend).run_scenario(&trace);
                    outcome
                })
            };
            let baseline = replay(THREAD_COUNTS[0]);
            for &threads in &THREAD_COUNTS[1..] {
                let outcome = replay(threads);
                assert_eq!(
                    baseline.structural_fingerprint(),
                    outcome.structural_fingerprint(),
                    "{}/{backend:?}: scenario replay diverged at {threads} threads \
                     (tree {:016x} vs {:016x}, queries {:016x} vs {:016x})",
                    scenario.name(),
                    baseline.tree_fingerprint,
                    outcome.tree_fingerprint,
                    baseline.queries_fingerprint,
                    outcome.queries_fingerprint,
                );
            }
        }
    }
}

#[test]
fn serve_layer_replay_is_thread_count_invariant_for_every_backend() {
    // The serving layer's regression story: a trace group-committed through
    // a `Server` (with concurrent readers racing the commits) must land on
    // the same per-epoch trees — and the same final tree — at every pool
    // size, for every backend, because the writer preserves the trace's
    // `apply_batch` boundaries. Query *throughput* is interleaving-dependent
    // and deliberately unpinned; the structure is not.
    for (scenario, seed) in [
        (Scenario::ReadMostly, 27u64),
        (Scenario::MergeSplitStorm, 28),
    ] {
        let trace = scenario.record(96, seed);
        for backend in Backend::all_default() {
            let replay = |threads: usize| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("build test pool");
                pool.install(|| {
                    let dfs = MaintainerBuilder::new(backend).build(&trace.initial_graph());
                    pardfs::ConcurrentScenarioRunner::new(&trace, 2).run(dfs)
                })
            };
            let baseline = replay(THREAD_COUNTS[0]);
            assert_eq!(baseline.torn_snapshots, 0);
            let epoch_fingerprints = |run: &pardfs::ConcurrentOutcome| -> Vec<(u64, u64)> {
                run.epochs
                    .iter()
                    .map(|e| (e.epoch, e.fingerprint))
                    .collect()
            };
            for &threads in &THREAD_COUNTS[1..] {
                let outcome = replay(threads);
                assert_eq!(outcome.torn_snapshots, 0);
                assert_eq!(
                    baseline.final_fingerprint,
                    outcome.final_fingerprint,
                    "{}/{backend:?}: served final tree diverged at {threads} threads",
                    scenario.name()
                );
                assert_eq!(
                    epoch_fingerprints(&baseline),
                    epoch_fingerprints(&outcome),
                    "{}/{backend:?}: per-epoch trees diverged at {threads} threads",
                    scenario.name()
                );
                assert_eq!(
                    baseline.updates_applied,
                    outcome.updates_applied,
                    "{}/{backend:?}: applied-update census diverged at {threads} threads",
                    scenario.name()
                );
            }
            // And the served tree is the single-threaded runner's tree: the
            // serving layer adds concurrency, not a different algorithm.
            let (_, reference) = MaintainerBuilder::new(backend).run_scenario(&trace);
            assert_eq!(
                baseline.final_fingerprint,
                reference.tree_fingerprint,
                "{}/{backend:?}: served tree != ScenarioRunner tree",
                scenario.name()
            );
        }
    }
}

#[test]
fn builder_num_threads_pools_are_thread_count_invariant() {
    // Same invariant through the `MaintainerBuilder::num_threads` decorator
    // (a private pool per maintainer) instead of an ambient `install`.
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let graph = generators::random_connected_gnm(400, 1600, &mut rng);
    let updates = workload(&graph, 25, 555);
    let run = |threads: usize| {
        let mut dfs = MaintainerBuilder::new(Backend::Parallel)
            .num_threads(threads)
            .build(&graph);
        let mut fingerprints = Vec::new();
        for update in &updates {
            dfs.apply_update(update);
            fingerprints.push(fingerprint(&dfs.stats()));
        }
        dfs.check().expect("valid tree");
        let parents: Vec<Option<Vertex>> = (0..dfs.num_vertices() as Vertex)
            .map(|v| dfs.forest_parent(v))
            .collect();
        (parents, dfs.forest_roots(), fingerprints)
    };
    let baseline = run(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(run(threads), baseline, "num_threads({threads}) diverged");
    }
}
