//! Cross-crate integration tests: the four maintainers (sequential baseline,
//! parallel, streaming, distributed) and the fault tolerant structure are
//! driven with the same update sequences and must all produce valid DFS
//! forests that agree on connectivity with a reference graph.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{connected_components, generators, Graph, Update};
use pardfs::{
    DistributedDynamicDfs, DynamicDfs, FaultTolerantDfs, SeqRerootDfs, Strategy,
    StreamingDynamicDfs,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Component labels of the reference graph, restricted to original vertices.
fn components_of(g: &Graph) -> Vec<u32> {
    let (labels, _) = connected_components(g);
    labels
}

#[test]
fn all_maintainers_agree_with_reference_connectivity() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let n = 60usize;
    let g = generators::random_connected_gnm(n, 150, &mut rng);
    let updates = random_update_sequence(&g, 40, &UpdateMix::default(), &mut rng);

    let mut reference = g.clone();
    let mut seq = SeqRerootDfs::new(&g);
    let mut par_simple = DynamicDfs::with_strategy(&g, Strategy::Simple);
    let mut par_phased = DynamicDfs::with_strategy(&g, Strategy::Phased);
    let mut streaming = StreamingDynamicDfs::new(&g);
    let mut congest = DistributedDynamicDfs::new(&g, 8);

    for (i, u) in updates.iter().enumerate() {
        reference.apply(u);
        seq.apply_update(u);
        par_simple.apply_update(u);
        par_phased.apply_update(u);
        streaming.apply_update(u);
        congest.apply_update(u);

        seq.check().unwrap_or_else(|e| panic!("seq, update {i}: {e}"));
        par_simple
            .check()
            .unwrap_or_else(|e| panic!("simple, update {i}: {e}"));
        par_phased
            .check()
            .unwrap_or_else(|e| panic!("phased, update {i}: {e}"));
        streaming
            .check()
            .unwrap_or_else(|e| panic!("streaming, update {i}: {e}"));
        congest
            .check()
            .unwrap_or_else(|e| panic!("congest, update {i}: {e}"));

        // Connectivity agreement on the original vertex ids.
        let labels = components_of(&reference);
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if !reference.is_active(a) || !reference.is_active(b) {
                    continue;
                }
                let same = labels[a as usize] == labels[b as usize];
                assert_eq!(
                    par_phased.same_component(a, b),
                    same,
                    "update {i}: phased connectivity disagrees on ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn fault_tolerant_agrees_with_fully_dynamic_processing() {
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    let g = generators::random_connected_gnm(50, 160, &mut rng);
    let mut ft = FaultTolerantDfs::new(&g);

    for k in [1usize, 2, 4, 6] {
        let updates = random_update_sequence(&g, k, &UpdateMix::default(), &mut rng);
        // Fault tolerant: one shot from the preprocessed structure.
        let result = ft.tree_after(&updates);
        result.check().unwrap();

        // Fully dynamic: process the same updates one by one.
        let mut dynamic = DynamicDfs::new(&g);
        let mut reference = g.clone();
        for u in &updates {
            dynamic.apply_update(u);
            reference.apply(u);
        }
        dynamic.check().unwrap();

        // Both must span the same vertex set (same number of tree vertices).
        assert_eq!(
            result.tree().num_vertices(),
            dynamic.tree().num_vertices(),
            "k = {k}"
        );
    }
}

#[test]
fn adversarial_families_exercise_deep_reroots() {
    // Families whose DFS trees are extremely unbalanced: long paths, brooms,
    // caterpillars and path-of-cliques. These are the shapes on which naive
    // rerooting degenerates; every maintainer must still stay correct.
    let families: Vec<(&str, Graph)> = vec![
        ("path", generators::path(300)),
        ("broom", generators::broom(150, 150)),
        ("caterpillar", generators::caterpillar(100, 2)),
        ("path_of_cliques", generators::path_of_cliques(30, 6)),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for (name, g) in families {
        let updates = random_update_sequence(&g, 20, &UpdateMix::edges_only(), &mut rng);
        let mut dfs = DynamicDfs::new(&g);
        for (i, u) in updates.iter().enumerate() {
            dfs.apply_update(u);
            dfs.check()
                .unwrap_or_else(|e| panic!("{name}, update {i} ({u:?}): {e}"));
        }
        // Query-round bound check (generous constant; exact numbers live in
        // the experiment harness).
        let n = dfs.tree().num_vertices() as f64;
        let log2n = n.log2().max(1.0);
        assert!(
            (dfs.last_stats().total_query_sets() as f64) <= 30.0 * log2n * log2n,
            "{name}: query sets {} too large for n = {n}",
            dfs.last_stats().total_query_sets()
        );
    }
}

#[test]
fn growing_a_graph_from_nothing() {
    // Start from isolated vertices and build up a graph purely through
    // updates, including vertex insertions that arrive with several edges.
    let g = Graph::new(4);
    let mut dfs = DynamicDfs::new(&g);
    let mut seq = SeqRerootDfs::new(&g);
    let mut updates: Vec<Update> = vec![
        Update::InsertEdge(0, 1),
        Update::InsertEdge(2, 3),
        Update::InsertVertex { edges: vec![1, 2] }, // vertex 4 bridges the two pairs
        Update::InsertEdge(0, 3),
        Update::DeleteVertex(4),
        Update::InsertVertex { edges: vec![0] },    // vertex 5
        Update::InsertVertex { edges: vec![5, 3] }, // vertex 6
        Update::DeleteEdge(0, 1),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // Finish with random churn.
    let base = {
        let mut scratch = Graph::new(4);
        for u in &updates {
            scratch.apply(u);
        }
        scratch
    };
    updates.extend(random_update_sequence(&base, 15, &UpdateMix::default(), &mut rng));

    for (i, u) in updates.iter().enumerate() {
        let a = dfs.apply_update(u);
        let b = seq.apply_update(u);
        assert_eq!(a, b, "inserted-vertex ids must agree (update {i})");
        dfs.check().unwrap_or_else(|e| panic!("core, update {i}: {e}"));
        seq.check().unwrap_or_else(|e| panic!("seq, update {i}: {e}"));
    }
}

#[test]
fn forest_parent_chains_are_acyclic_and_lead_to_roots() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::random_connected_gnm(80, 200, &mut rng);
    let updates = random_update_sequence(&g, 30, &UpdateMix::default(), &mut rng);
    let mut dfs = DynamicDfs::new(&g);
    for u in &updates {
        dfs.apply_update(u);
    }
    dfs.check().unwrap();
    let roots: std::collections::HashSet<u32> = dfs.forest_roots().into_iter().collect();
    for v in 0..dfs.augmented_graph().capacity() as u32 {
        let Some(mut cur) = dfs.forest_parent(v).or_else(|| {
            // v itself may be a root or absent; nothing to walk.
            None
        }) else {
            continue;
        };
        let mut steps = 0;
        while let Some(p) = dfs.forest_parent(cur) {
            cur = p;
            steps += 1;
            assert!(steps <= dfs.augmented_graph().capacity(), "cycle detected");
        }
        assert!(roots.contains(&cur), "chain from {v} ends at a non-root {cur}");
    }
}
