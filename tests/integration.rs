//! Cross-crate integration tests, driven through the unified
//! [`DfsMaintainer`] trait and the [`MaintainerBuilder`]: all five backends
//! absorb the same update sequences and must produce valid DFS forests that
//! agree on connectivity with a reference graph. (The exhaustive lockstep
//! comparison lives in `tests/conformance.rs`; this file covers the
//! workspace-level wiring — builder, umbrella re-exports, batch API,
//! fault-tolerant query style — and a few scripted scenarios.)

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{connected_components, generators, Graph, Update};
use pardfs::{Backend, BatchReport, DfsMaintainer, FaultTolerantDfs, MaintainerBuilder, Strategy};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

#[test]
fn all_maintainers_agree_with_reference_connectivity() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let n = 60usize;
    let g = generators::random_connected_gnm(n, 150, &mut rng);
    let updates = random_update_sequence(&g, 40, &UpdateMix::default(), &mut rng);

    let mut reference = g.clone();
    let mut maintainers: Vec<Box<dyn DfsMaintainer>> = vec![
        MaintainerBuilder::new(Backend::Sequential).build(&g),
        MaintainerBuilder::new(Backend::Parallel)
            .strategy(Strategy::Simple)
            .build(&g),
        MaintainerBuilder::new(Backend::Parallel)
            .strategy(Strategy::Phased)
            .build(&g),
        MaintainerBuilder::new(Backend::Streaming).build(&g),
        MaintainerBuilder::new(Backend::Congest { bandwidth: 8 }).build(&g),
    ];

    for (i, u) in updates.iter().enumerate() {
        reference.apply(u);
        let (labels, _) = connected_components(&reference);

        for dfs in &mut maintainers {
            dfs.apply_update(u);
            dfs.check()
                .unwrap_or_else(|e| panic!("{}, update {i}: {e}", dfs.backend_name()));
        }

        // Connectivity agreement on the original vertex ids (checked on the
        // phased maintainer; the full cross-backend matrix lives in the
        // conformance suite).
        let phased = &maintainers[2];
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if !reference.is_active(a) || !reference.is_active(b) {
                    continue;
                }
                let same = labels[a as usize] == labels[b as usize];
                assert_eq!(
                    phased.same_component(a, b),
                    same,
                    "update {i}: phased connectivity disagrees on ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn fault_tolerant_agrees_with_fully_dynamic_processing() {
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    let g = generators::random_connected_gnm(50, 160, &mut rng);
    let mut ft = FaultTolerantDfs::new(&g);

    for k in [1usize, 2, 4, 6] {
        let updates = random_update_sequence(&g, k, &UpdateMix::default(), &mut rng);
        // Fault tolerant, query style: one shot from the preprocessed
        // structure, maintainer state untouched.
        let result = ft.tree_after(&updates);
        result.check().unwrap();

        // The same batch through the unified batch API must agree.
        let report: BatchReport = ft.apply_batch(&updates);
        assert_eq!(report.applied(), k);
        assert_eq!(report.inserted, result.inserted, "k = {k}");
        assert_eq!(
            DfsMaintainer::tree(&ft).num_vertices(),
            result.tree().num_vertices(),
            "k = {k}"
        );
        ft.reset();

        // Fully dynamic: process the same updates one by one.
        let mut dynamic = MaintainerBuilder::new(Backend::Parallel).build(&g);
        for u in &updates {
            dynamic.apply_update(u);
        }
        dynamic.check().unwrap();

        // Both must span the same vertex set (same number of tree vertices).
        assert_eq!(
            result.tree().num_vertices(),
            dynamic.tree().num_vertices(),
            "k = {k}"
        );
        // ... and agree on the resulting forest structure queries.
        assert_eq!(result.forest_roots().len(), dynamic.forest_roots().len());
    }
}

#[test]
fn adversarial_families_exercise_deep_reroots() {
    // Families whose DFS trees are extremely unbalanced: long paths, brooms,
    // caterpillars and path-of-cliques. These are the shapes on which naive
    // rerooting degenerates; every maintainer must still stay correct.
    let families: Vec<(&str, Graph)> = vec![
        ("path", generators::path(300)),
        ("broom", generators::broom(150, 150)),
        ("caterpillar", generators::caterpillar(100, 2)),
        ("path_of_cliques", generators::path_of_cliques(30, 6)),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for (name, g) in families {
        let updates = random_update_sequence(&g, 20, &UpdateMix::edges_only(), &mut rng);
        let mut dfs = MaintainerBuilder::new(Backend::Parallel).build(&g);
        for (i, u) in updates.iter().enumerate() {
            dfs.apply_update(u);
            dfs.check()
                .unwrap_or_else(|e| panic!("{name}, update {i} ({u:?}): {e}"));
        }
        // Query-round bound check (generous constant; exact numbers live in
        // the experiment harness).
        let n = dfs.tree().num_vertices() as f64;
        let log2n = n.log2().max(1.0);
        assert!(
            (dfs.stats().total_query_sets() as f64) <= 30.0 * log2n * log2n,
            "{name}: query sets {} too large for n = {n}",
            dfs.stats().total_query_sets()
        );
    }
}

#[test]
fn growing_a_graph_from_nothing() {
    // Start from isolated vertices and build up a graph purely through
    // updates, including vertex insertions that arrive with several edges.
    // Inserted-vertex ids must agree across backends (the trait reports them
    // through the same `apply_update` surface).
    let g = Graph::new(4);
    let mut dfs = MaintainerBuilder::new(Backend::Parallel).build(&g);
    let mut seq = MaintainerBuilder::new(Backend::Sequential).build(&g);
    let mut updates: Vec<Update> = vec![
        Update::InsertEdge(0, 1),
        Update::InsertEdge(2, 3),
        Update::InsertVertex { edges: vec![1, 2] }, // vertex 4 bridges the two pairs
        Update::InsertEdge(0, 3),
        Update::DeleteVertex(4),
        Update::InsertVertex { edges: vec![0] }, // vertex 5
        Update::InsertVertex { edges: vec![5, 3] }, // vertex 6
        Update::DeleteEdge(0, 1),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // Finish with random churn.
    let base = {
        let mut scratch = Graph::new(4);
        for u in &updates {
            scratch.apply(u);
        }
        scratch
    };
    updates.extend(random_update_sequence(
        &base,
        15,
        &UpdateMix::default(),
        &mut rng,
    ));

    for (i, u) in updates.iter().enumerate() {
        let a = dfs.apply_update(u);
        let b = seq.apply_update(u);
        assert_eq!(a, b, "inserted-vertex ids must agree (update {i})");
        dfs.check()
            .unwrap_or_else(|e| panic!("core, update {i}: {e}"));
        seq.check()
            .unwrap_or_else(|e| panic!("seq, update {i}: {e}"));
    }
}

#[test]
fn forest_parent_chains_are_acyclic_and_lead_to_roots() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::random_connected_gnm(80, 200, &mut rng);
    let updates = random_update_sequence(&g, 30, &UpdateMix::default(), &mut rng);
    let mut dfs = MaintainerBuilder::new(Backend::Parallel).build(&g);
    dfs.apply_batch(&updates);
    dfs.check().unwrap();
    let roots: std::collections::HashSet<u32> = dfs.forest_roots().into_iter().collect();
    let cap = dfs.tree().capacity() as u32;
    for v in 0..cap {
        let Some(mut cur) = dfs.forest_parent(v) else {
            continue; // v is a root or absent; nothing to walk.
        };
        let mut steps = 0;
        while let Some(p) = dfs.forest_parent(cur) {
            cur = p;
            steps += 1;
            assert!(steps <= cap, "cycle detected");
        }
        assert!(
            roots.contains(&cur),
            "chain from {v} ends at a non-root {cur}"
        );
    }
}

#[test]
fn batch_reports_expose_normalised_statistics() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let g = generators::random_connected_gnm(40, 100, &mut rng);
    let updates = random_update_sequence(&g, 12, &UpdateMix::edges_only(), &mut rng);
    for backend in Backend::all_default() {
        let mut dfs = MaintainerBuilder::new(backend).build(&g);
        let report = dfs.apply_batch(&updates);
        assert_eq!(report.applied(), updates.len(), "{}", dfs.backend_name());
        assert_eq!(report.per_update.len(), updates.len());
        // Edge-only workloads keep the graph connected or split it; either
        // way at least one update must have touched the tree.
        assert!(
            report.total_relinked_vertices() > 0,
            "{}: no update relinked anything",
            dfs.backend_name()
        );
        assert!(report.max_query_sets() <= report.total_query_sets());
        // Every per-update report carries the right backend tag.
        for r in &report.per_update {
            assert_eq!(r.backend(), dfs.backend_name());
        }
    }
}
