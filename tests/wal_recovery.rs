//! Crash-recovery fault-injection suite: every checked-in corpus trace is
//! served durably, the server is killed at a seeded-random batch boundary,
//! recovered from the WAL + latest checkpoint, and driven through the rest of
//! the trace — the final tree fingerprint must equal the one an undisturbed
//! single-[`ScenarioRunner`](pardfs::scenario::ScenarioRunner) replay
//! produces. All five backends are exercised; the kill seed is printed in
//! every failure message so a CI failure is reproducible with
//! `PARDFS_WAL_KILL_SEED=<seed>`.
//!
//! Torn-write coverage at the integration level: the WAL's final record is
//! truncated at **every byte offset** (recovery must always land on the last
//! complete epoch), and an interior record is damaged by one byte (recovery
//! must refuse with a hard error naming the epoch — resuming past silent
//! corruption would serve a wrong tree as if it were durable).
//!
//! The `--ignored` deep sweep replays one trace killed at **every** batch
//! boundary on every backend (nightly CI; set `WAL_SWEEP_DIR` to keep the
//! roll-up summary as an artifact).

use pardfs::scenario::{tree_fingerprint, TraceBatch};
use pardfs::{Backend, CheckpointPolicy, DurabilityConfig, MaintainerBuilder, Trace, Update};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_traces() -> Vec<(String, Trace)> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "trace"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable trace");
            let trace =
                Trace::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            (name, trace)
        })
        .collect()
}

/// A fresh scratch directory under the OS temp dir; pre-wiped.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pardfs-wal-recovery-{}-{id}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The trace's update batches in commit order (query batches don't commit).
fn update_batches(trace: &Trace) -> Vec<Vec<Update>> {
    trace
        .phases
        .iter()
        .flat_map(|p| &p.batches)
        .filter_map(|b| match b {
            TraceBatch::Updates(u) => Some(u.clone()),
            TraceBatch::Queries(_) => None,
        })
        .collect()
}

fn backend_label(backend: Backend) -> &'static str {
    match backend {
        Backend::Parallel => "parallel",
        Backend::Sequential => "sequential",
        Backend::Streaming => "streaming",
        Backend::Congest { .. } => "congest",
        Backend::FaultTolerant => "fault-tolerant",
    }
}

/// Serve the trace durably, kill (drop) the server after `kill` committed
/// batches, recover, commit the remainder, and return the final fingerprint.
/// `ctx` prefixes every panic so failures name the trace, backend, seed and
/// kill point.
fn kill_and_recover(
    trace: &Trace,
    backend: Backend,
    kill: usize,
    policy: CheckpointPolicy,
    ctx: &str,
) -> u64 {
    let batches = update_batches(trace);
    assert!(kill <= batches.len(), "{ctx}: kill point out of range");
    let dir = scratch_dir(backend_label(backend));
    let builder = MaintainerBuilder::new(backend);
    let config = DurabilityConfig::new(&dir).policy(policy);

    let mut server = builder
        .serve_durable(&trace.initial_graph(), &config)
        .unwrap_or_else(|e| panic!("{ctx}: serve_durable failed: {e}"));
    let writer = server.write_handle();
    for batch in &batches[..kill] {
        writer.submit(batch.clone());
        server
            .commit()
            .unwrap_or_else(|| panic!("{ctx}: pre-kill commit committed nothing"));
    }
    drop(writer);
    drop(server); // the kill: state survives only on disk

    let recovered = builder
        .recover(&config)
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    assert_eq!(
        recovered.stats.recovered_epoch, kill as u64,
        "{ctx}: recovered to the wrong epoch ({:?})",
        recovered.stats
    );
    assert_eq!(
        recovered.stats.torn_records_dropped, 0,
        "{ctx}: clean shutdown left a torn record"
    );

    let mut server = recovered.server;
    let writer = server.write_handle();
    for batch in &batches[kill..] {
        writer.submit(batch.clone());
        server
            .commit()
            .unwrap_or_else(|| panic!("{ctx}: post-recovery commit committed nothing"));
    }
    assert_eq!(
        server.read_handle().epoch(),
        batches.len() as u64,
        "{ctx}: epoch numbering did not survive recovery"
    );
    let fp = tree_fingerprint(server.maintainer());
    drop(writer);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    fp
}

/// The headline suite: every corpus trace × every backend, killed at one
/// seeded-random batch boundary, must recover onto the undisturbed
/// trajectory.
#[test]
fn kill_at_random_batch_recovers_the_undisturbed_trajectory_on_every_backend() {
    let seed = std::env::var("PARDFS_WAL_KILL_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x57A5_517E);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for (name, trace) in corpus_traces() {
        let batches = update_batches(&trace);
        assert!(
            batches.len() >= 2,
            "{name}: needs at least 2 update batches for a mid-stream kill"
        );
        for backend in Backend::all_default() {
            // A mid-stream kill point: at least one batch before, one after.
            let kill = rng.gen_range(1..batches.len());
            let ctx = format!(
                "{name}/{} (seed={seed}, kill after batch {kill}/{})",
                backend_label(backend),
                batches.len()
            );
            let (_, outcome) = MaintainerBuilder::new(backend).run_scenario(&trace);
            let recovered_fp = kill_and_recover(
                &trace,
                backend,
                kill,
                CheckpointPolicy::EveryKEpochs(3),
                &ctx,
            );
            assert_eq!(
                recovered_fp, outcome.tree_fingerprint,
                "{ctx}: recovered trajectory diverged from the undisturbed replay"
            );
        }
    }
}

/// Write a small durable run (checkpoint only at attach) and return the dir
/// plus the clean WAL bytes and the per-prefix reference fingerprints: the
/// fingerprint after each committed epoch, epoch 0 included.
fn seeded_wal_run(trace: &Trace, commits: usize) -> (PathBuf, Vec<u8>, Vec<u64>) {
    let batches = update_batches(trace);
    assert!(commits <= batches.len());
    let dir = scratch_dir("torn");
    let builder = MaintainerBuilder::new(Backend::Parallel);
    let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::Manual);
    let mut server = builder
        .serve_durable(&trace.initial_graph(), &config)
        .expect("fresh dir attaches");
    let writer = server.write_handle();
    let mut fingerprints = vec![tree_fingerprint(server.maintainer())];
    for batch in &batches[..commits] {
        writer.submit(batch.clone());
        server.commit().expect("commit");
        fingerprints.push(tree_fingerprint(server.maintainer()));
    }
    drop(writer);
    drop(server);
    let wal = std::fs::read(dir.join("wal.log")).expect("read wal");
    (dir, wal, fingerprints)
}

/// Torn final record: truncating the WAL at **every** byte offset inside the
/// final record must always recover to the last complete epoch — never an
/// error, never a wrong tree.
#[test]
fn truncating_the_final_record_at_every_byte_offset_recovers_the_last_complete_epoch() {
    let (_, trace) = corpus_traces()
        .into_iter()
        .find(|(name, _)| name.starts_with("merge-split-storm"))
        .expect("merge-split-storm trace is in the corpus");
    let commits = 3;
    let (dir, wal, fingerprints) = seeded_wal_run(&trace, commits);
    let builder = MaintainerBuilder::new(Backend::Parallel);
    let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::Manual);

    let text = String::from_utf8(wal.clone()).expect("wal is text");
    let final_start = text.rfind("\nrecord ").expect("3 records on disk") + 1;
    for cut in final_start..wal.len() {
        // Restore the clean log, then tear it mid-final-record. (Recovery
        // itself truncates the torn tail on reattach, so restore each time.)
        std::fs::write(dir.join("wal.log"), &wal[..cut]).expect("tear the wal");
        let recovered = builder
            .recover(&config)
            .unwrap_or_else(|e| panic!("cut at byte {cut}/{}: recovery failed: {e}", wal.len()));
        assert_eq!(
            recovered.stats.recovered_epoch,
            (commits - 1) as u64,
            "cut at byte {cut}: did not land on the last complete epoch"
        );
        assert_eq!(
            tree_fingerprint(recovered.server.maintainer()),
            fingerprints[commits - 1],
            "cut at byte {cut}: recovered the wrong tree"
        );
        if cut > final_start {
            assert!(
                recovered.stats.torn_records_dropped > 0 || recovered.stats.wal_bytes > 0,
                "cut at byte {cut}: torn bytes vanished without being reported"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Interior corruption is not a torn tail: one flipped byte in a record that
/// is *followed by* a complete record must fail recovery with an error that
/// names the damaged epoch.
#[test]
fn flipping_one_byte_of_an_interior_record_fails_recovery_naming_the_epoch() {
    let (_, trace) = corpus_traces()
        .into_iter()
        .find(|(name, _)| name.starts_with("merge-split-storm"))
        .expect("merge-split-storm trace is in the corpus");
    let (dir, wal, _) = seeded_wal_run(&trace, 3);
    let builder = MaintainerBuilder::new(Backend::Parallel);
    let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::Manual);

    let text = String::from_utf8(wal.clone()).expect("wal is text");
    // Damage epoch 2's body: first byte after its header line. Records 1 and
    // 3 stay intact, so the resync scan sees a complete record *after* the
    // damage and must refuse rather than treat it as a torn tail.
    let hdr = text.find("\nrecord 2 ").expect("epoch 2 on disk") + 1;
    let body = hdr + text[hdr..].find('\n').expect("header line ends") + 1;
    let mut damaged = wal.clone();
    damaged[body] ^= 0x01;
    std::fs::write(dir.join("wal.log"), &damaged).expect("damage the wal");

    let err = match builder.recover(&config) {
        Err(e) => e,
        Ok(_) => panic!("recovery accepted an interior-corrupt WAL"),
    };
    assert!(
        err.contains("epoch 2"),
        "error does not name the damaged epoch: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Back-compat pin: a durability directory whose checkpoint was written by a
/// pre-binary deployment (legacy text format) must still recover, replay the
/// WAL on top, and carry on — with the *next* checkpoint written in the
/// current binary format. Recovery sniffs the format per file; nothing in the
/// directory says which codec wrote it.
#[test]
fn legacy_text_checkpoints_recover_and_upgrade_to_binary() {
    let (_, trace) = corpus_traces()
        .into_iter()
        .find(|(name, _)| name.starts_with("merge-split-storm"))
        .expect("merge-split-storm trace is in the corpus");
    let commits = 3;
    let (dir, _, fingerprints) = seeded_wal_run(&trace, commits);

    // Rewrite the attach-time checkpoint (epoch 0) as the legacy text
    // rendering of the same state — exactly what a pre-binary deployment
    // would have left on disk.
    let ckpt_path = dir.join(format!("checkpoint-{:016x}.ckpt", 0));
    let bytes = std::fs::read(&ckpt_path).expect("attach checkpoint exists");
    let ckpt = pardfs::wal::Checkpoint::parse_any(&bytes).expect("own checkpoint parses");
    std::fs::write(&ckpt_path, ckpt.render()).expect("downgrade checkpoint to text");

    let builder = MaintainerBuilder::new(Backend::Parallel);
    let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::Manual);
    let recovered = builder
        .recover(&config)
        .expect("legacy text checkpoint recovers");
    assert_eq!(recovered.stats.recovered_epoch, commits as u64);
    let mut server = recovered.server;
    assert_eq!(
        tree_fingerprint(server.maintainer()),
        fingerprints[commits],
        "recovery from a text checkpoint landed on the wrong tree"
    );

    // The next checkpoint this deployment takes is written in the current
    // binary format — the directory upgrades codec by codec.
    server
        .force_checkpoint()
        .expect("post-recovery checkpoint succeeds");
    let new_ckpt = std::fs::read(dir.join(format!("checkpoint-{commits:016x}.ckpt")))
        .expect("forced checkpoint exists");
    assert!(
        new_ckpt.starts_with(&pardfs::graph::snap::SNAP_MAGIC_V2),
        "post-recovery checkpoint is not in the current (v2) binary format"
    );

    // And the recovered server keeps serving: drive the rest of the trace
    // and land on the undisturbed trajectory.
    let batches = update_batches(&trace);
    let writer = server.write_handle();
    for batch in &batches[commits..] {
        writer.submit(batch.clone());
        server.commit().expect("post-recovery commit");
    }
    let (_, outcome) = MaintainerBuilder::new(Backend::Parallel).run_scenario(&trace);
    assert_eq!(
        tree_fingerprint(server.maintainer()),
        outcome.tree_fingerprint,
        "trajectory after text-checkpoint recovery diverged"
    );
    drop(writer);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Back-compat pin for the *first* binary generation: a durability directory
/// whose checkpoint is a `pardfs-snap` **v1** container (what PR 8
/// deployments wrote) must keep recovering now that new checkpoints are v2 —
/// and, as with the text pin above, upgrade to v2 at the next checkpoint.
#[test]
fn v1_binary_checkpoints_recover_and_upgrade_to_v2() {
    let (_, trace) = corpus_traces()
        .into_iter()
        .find(|(name, _)| name.starts_with("merge-split-storm"))
        .expect("merge-split-storm trace is in the corpus");
    let commits = 3;
    let (dir, _, fingerprints) = seeded_wal_run(&trace, commits);

    // Rewrite the attach-time checkpoint as the v1 rendering of the same
    // state — byte-for-byte what a PR 8 deployment left on disk.
    let ckpt_path = dir.join(format!("checkpoint-{:016x}.ckpt", 0));
    let bytes = std::fs::read(&ckpt_path).expect("attach checkpoint exists");
    assert!(
        bytes.starts_with(&pardfs::graph::snap::SNAP_MAGIC_V2),
        "freshly written checkpoints are v2"
    );
    let ckpt = pardfs::wal::Checkpoint::parse_any(&bytes).expect("own checkpoint parses");
    std::fs::write(&ckpt_path, ckpt.render_binary_v1()).expect("downgrade checkpoint to v1");

    let builder = MaintainerBuilder::new(Backend::Parallel);
    let config = DurabilityConfig::new(&dir).policy(CheckpointPolicy::Manual);
    let recovered = builder
        .recover(&config)
        .expect("v1 binary checkpoint recovers");
    assert_eq!(recovered.stats.recovered_epoch, commits as u64);
    let mut server = recovered.server;
    assert_eq!(
        tree_fingerprint(server.maintainer()),
        fingerprints[commits],
        "recovery from a v1 checkpoint landed on the wrong tree"
    );
    server
        .force_checkpoint()
        .expect("post-recovery checkpoint succeeds");
    let new_ckpt = std::fs::read(dir.join(format!("checkpoint-{commits:016x}.ckpt")))
        .expect("forced checkpoint exists");
    assert!(
        new_ckpt.starts_with(&pardfs::graph::snap::SNAP_MAGIC_V2),
        "post-recovery checkpoint did not upgrade to v2"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Nightly deep sweep: one trace, every backend, killed at **every** batch
/// boundary (including before the first and after the last commit). Set
/// `WAL_SWEEP_DIR` to keep the roll-up as an artifact.
#[test]
#[ignore]
fn deep_kill_point_sweep() {
    let (name, trace) = corpus_traces()
        .into_iter()
        .find(|(name, _)| name.starts_with("merge-split-storm"))
        .expect("merge-split-storm trace is in the corpus");
    let batches = update_batches(&trace);
    let mut summary = String::new();
    for backend in Backend::all_default() {
        let (_, outcome) = MaintainerBuilder::new(backend).run_scenario(&trace);
        for kill in 0..=batches.len() {
            let ctx = format!(
                "{name}/{} (sweep, kill after batch {kill}/{})",
                backend_label(backend),
                batches.len()
            );
            let fp = kill_and_recover(
                &trace,
                backend,
                kill,
                CheckpointPolicy::EveryKEpochs(3),
                &ctx,
            );
            assert_eq!(
                fp, outcome.tree_fingerprint,
                "{ctx}: recovered trajectory diverged from the undisturbed replay"
            );
            let _ = writeln!(
                summary,
                "{name} {} kill={kill} tree={fp:016x} ok",
                backend_label(backend)
            );
        }
    }
    print!("{summary}");
    if let Some(dir) = std::env::var_os("WAL_SWEEP_DIR") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create sweep dir");
        std::fs::write(dir.join("wal_kill_sweep.txt"), summary).expect("write sweep summary");
    }
}
