//! Cross-backend conformance suite: every [`DfsMaintainer`] backend is driven
//! through the *same* update sequences by the *same* parameterised driver and
//! must (a) keep a valid DFS tree after every update, (b) agree with a
//! reference union-find on the exact component structure, and (c) agree with
//! every other backend on all forest queries that are
//! structure-independent (component membership, component count, vertex
//! presence). The maintained DFS *trees* may legitimately differ between
//! backends — a graph has many DFS trees — so tree shapes are never compared.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{connected_components, generators, Graph, Update};
use pardfs::{Backend, CheckMode, DfsMaintainer, MaintainerBuilder, RebuildPolicy, Strategy};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Every backend configuration under conformance test. The parallel backend
/// appears at three rebuild policies so the incremental `D` path (overlay +
/// base-tree decomposition) is exercised in lockstep with the others.
fn contenders() -> Vec<(String, MaintainerBuilder)> {
    let mut out = vec![
        (
            "parallel/simple".to_string(),
            MaintainerBuilder::new(Backend::Parallel).strategy(Strategy::Simple),
        ),
        (
            "parallel/phased".to_string(),
            MaintainerBuilder::new(Backend::Parallel).strategy(Strategy::Phased),
        ),
        (
            "parallel/rebuild-every".to_string(),
            MaintainerBuilder::new(Backend::Parallel).rebuild_policy(RebuildPolicy::EveryUpdate),
        ),
        (
            "parallel/rebuild-never".to_string(),
            MaintainerBuilder::new(Backend::Parallel).rebuild_policy(RebuildPolicy::Never),
        ),
        (
            "sequential".to_string(),
            MaintainerBuilder::new(Backend::Sequential),
        ),
        (
            "streaming".to_string(),
            MaintainerBuilder::new(Backend::Streaming),
        ),
        (
            "fault-tolerant".to_string(),
            MaintainerBuilder::new(Backend::FaultTolerant),
        ),
    ];
    for bandwidth in [1usize, 8] {
        out.push((
            format!("congest/B={bandwidth}"),
            MaintainerBuilder::new(Backend::Congest { bandwidth }),
        ));
    }
    out
}

/// The parameterised conformance driver: apply `updates` to every backend in
/// lockstep with a reference graph and assert agreement after every step.
fn conformance_run(context: &str, graph: &Graph, updates: &[Update]) {
    let mut reference = graph.clone();
    let mut maintainers: Vec<(String, Box<dyn DfsMaintainer>)> = contenders()
        .into_iter()
        .map(|(name, builder)| (name, builder.build(graph)))
        .collect();

    for (i, update) in updates.iter().enumerate() {
        reference.apply(update);
        let (labels, component_count) = connected_components(&reference);

        for (name, dfs) in &mut maintainers {
            dfs.apply_update(update);
            dfs.check().unwrap_or_else(|e| {
                panic!("{context}: {name}, update {i} ({update:?}) broke the DFS tree: {e}")
            });

            // Component count: one forest root per component.
            assert_eq!(
                dfs.forest_roots().len(),
                component_count,
                "{context}: {name}, update {i}: component count"
            );

            // Exact component structure against the reference labels, on the
            // whole (padded) id space.
            let cap = reference.capacity() as u32;
            for a in 0..cap {
                if !reference.is_active(a) {
                    assert!(
                        dfs.forest_parent(a).is_none(),
                        "{context}: {name}, update {i}: deleted vertex {a} still has a parent"
                    );
                    continue;
                }
                for b in (a + 1)..cap {
                    if !reference.is_active(b) {
                        continue;
                    }
                    let same = labels[a as usize] == labels[b as usize];
                    assert_eq!(
                        dfs.same_component(a, b),
                        same,
                        "{context}: {name}, update {i}: connectivity disagrees on ({a},{b})"
                    );
                }
            }

            // Forest parents stay inside the component (spot consistency
            // between the two query surfaces).
            for a in 0..cap {
                if let Some(p) = dfs.forest_parent(a) {
                    assert!(
                        dfs.same_component(a, p),
                        "{context}: {name}, update {i}: parent {p} of {a} in another component"
                    );
                }
            }
        }

        // Vertex-count agreement across all backends.
        let counts: Vec<usize> = maintainers.iter().map(|(_, d)| d.num_vertices()).collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{context}: update {i}: vertex counts diverge: {counts:?}"
        );
    }
}

#[test]
fn conformance_random_mixed_updates() {
    let mut rng = ChaCha8Rng::seed_from_u64(2027);
    for trial in 0..3 {
        let n = 20 + 10 * trial;
        let g = generators::random_connected_gnm(n, 3 * n, &mut rng);
        let updates = random_update_sequence(&g, 15, &UpdateMix::default(), &mut rng);
        conformance_run(&format!("random trial {trial}"), &g, &updates);
    }
}

#[test]
fn conformance_edge_churn_on_adversarial_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let shapes: Vec<(&str, Graph)> = vec![
        ("path", generators::path(40)),
        ("broom", generators::broom(20, 20)),
        ("caterpillar", generators::caterpillar(12, 2)),
        ("path_of_cliques", generators::path_of_cliques(8, 5)),
    ];
    for (name, g) in shapes {
        let updates = random_update_sequence(&g, 12, &UpdateMix::edges_only(), &mut rng);
        conformance_run(name, &g, &updates);
    }
}

#[test]
fn conformance_delete_heavy_workloads() {
    // Deletions dominate: stresses the overlay's removed/dead masks, subtree
    // re-attachment through surviving edges, and (for the incremental
    // parallel configurations) queries against heavily masked base trees.
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    for (name, g) in [
        (
            "dense-random",
            generators::random_connected_gnm(24, 90, &mut rng),
        ),
        ("grid", generators::grid(5, 6)),
        ("path_of_cliques", generators::path_of_cliques(5, 5)),
    ] {
        let updates = random_update_sequence(&g, 14, &UpdateMix::delete_heavy(), &mut rng);
        conformance_run(&format!("delete-heavy {name}"), &g, &updates);
    }
}

#[test]
fn conformance_vertex_churn_workloads() {
    // Vertex insertions/deletions only: the id space grows past the build
    // capacity and shrinks again, exercising overlay growth and the
    // inserted-vertex singleton decomposition on every backend.
    let mut rng = ChaCha8Rng::seed_from_u64(31337);
    for trial in 0..2 {
        let n = 18 + 8 * trial;
        let g = generators::random_connected_gnm(n, 2 * n, &mut rng);
        let updates = random_update_sequence(&g, 12, &UpdateMix::vertices_only(5), &mut rng);
        conformance_run(&format!("vertex-churn trial {trial}"), &g, &updates);
    }
}

#[test]
fn conformance_seeded_regression_corpus() {
    // Seeds that produced interesting structure during development (threshold
    // crossings mid-sequence, deletions that split off single vertices,
    // re-insertion of just-deleted edges). Proptest counterexamples get
    // appended here with their generating parameters.
    let corpus: &[(u64, usize, usize, usize)] = &[
        // (seed, n, extra edges, updates)
        (7, 20, 20, 18),
        (99, 12, 4, 20),
        (2024, 33, 60, 16),
        (550, 25, 10, 22),
    ];
    for &(seed, n, extra, count) in corpus {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = generators::random_connected_gnm(n, m, &mut rng);
        let updates = random_update_sequence(&g, count, &UpdateMix::delete_heavy(), &mut rng);
        conformance_run(&format!("corpus seed {seed}"), &g, &updates);
    }
}

#[test]
fn conformance_disconnecting_and_reconnecting() {
    // Deterministic scripted sequence hitting the component-splitting paths:
    // cut a path in the middle, cut again, reconnect differently, drop and
    // re-grow vertices.
    let g = generators::path(12);
    let updates = vec![
        Update::DeleteEdge(5, 6),
        Update::DeleteEdge(2, 3),
        Update::InsertEdge(0, 11),
        Update::DeleteVertex(8),
        Update::InsertVertex { edges: vec![2, 3] },
        Update::InsertEdge(5, 7),
        Update::DeleteEdge(0, 11),
    ];
    conformance_run("scripted split/rejoin", &g, &updates);
}

#[test]
fn conformance_batch_equals_one_by_one() {
    // For every backend: applying a batch through apply_batch must leave the
    // maintainer in a state component-equivalent to applying the updates one
    // by one, and the report must cover every update.
    let mut rng = ChaCha8Rng::seed_from_u64(555);
    let g = generators::random_connected_gnm(30, 80, &mut rng);
    let updates = random_update_sequence(&g, 10, &UpdateMix::default(), &mut rng);

    let mut reference = g.clone();
    for u in &updates {
        reference.apply(u);
    }
    let (labels, component_count) = connected_components(&reference);

    for (name, builder) in contenders() {
        let mut batched = builder.build(&g);
        let report = batched.apply_batch(&updates);
        assert_eq!(report.applied(), updates.len(), "{name}");
        assert_eq!(report.per_update.len(), updates.len(), "{name}");
        batched
            .check()
            .unwrap_or_else(|e| panic!("{name}: batch apply broke the tree: {e}"));

        let mut stepped = builder.build(&g);
        for u in &updates {
            stepped.apply_update(u);
        }

        assert_eq!(
            batched.forest_roots().len(),
            component_count,
            "{name}: batched component count"
        );
        let cap = reference.capacity() as u32;
        for a in 0..cap {
            for b in (a + 1)..cap {
                if !reference.is_active(a) || !reference.is_active(b) {
                    continue;
                }
                let same = labels[a as usize] == labels[b as usize];
                assert_eq!(
                    batched.same_component(a, b),
                    same,
                    "{name}: batched ({a},{b})"
                );
                assert_eq!(
                    stepped.same_component(a, b),
                    same,
                    "{name}: stepped ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn conformance_checked_mode_accepts_all_backends() {
    // CheckMode::EveryUpdate wraps every backend; a short mixed run must not
    // trip it.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let g = generators::random_connected_gnm(25, 60, &mut rng);
    let updates = random_update_sequence(&g, 8, &UpdateMix::default(), &mut rng);
    for (name, builder) in contenders() {
        let mut dfs = builder.check_mode(CheckMode::EveryUpdate).build(&g);
        for u in &updates {
            dfs.apply_update(u);
        }
        assert!(dfs.check().is_ok(), "{name}");
    }
}
