//! Cross-backend conformance suite: every [`DfsMaintainer`] backend is driven
//! through the *same* update sequences by the *same* parameterised driver and
//! must (a) keep a valid DFS tree after every update, (b) agree with a
//! reference union-find on the exact component structure, and (c) agree with
//! every other backend on all forest queries that are
//! structure-independent (component membership, component count, vertex
//! presence). The maintained DFS *trees* may legitimately differ between
//! backends — a graph has many DFS trees — so tree shapes are never compared.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{connected_components, generators, Graph, Update};
use pardfs::{Backend, CheckMode, DfsMaintainer, MaintainerBuilder, Strategy};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Every backend configuration under conformance test.
fn contenders() -> Vec<(String, MaintainerBuilder)> {
    let mut out = vec![
        (
            "parallel/simple".to_string(),
            MaintainerBuilder::new(Backend::Parallel).strategy(Strategy::Simple),
        ),
        (
            "parallel/phased".to_string(),
            MaintainerBuilder::new(Backend::Parallel).strategy(Strategy::Phased),
        ),
        (
            "sequential".to_string(),
            MaintainerBuilder::new(Backend::Sequential),
        ),
        (
            "streaming".to_string(),
            MaintainerBuilder::new(Backend::Streaming),
        ),
        (
            "fault-tolerant".to_string(),
            MaintainerBuilder::new(Backend::FaultTolerant),
        ),
    ];
    for bandwidth in [1usize, 8] {
        out.push((
            format!("congest/B={bandwidth}"),
            MaintainerBuilder::new(Backend::Congest { bandwidth }),
        ));
    }
    out
}

/// The parameterised conformance driver: apply `updates` to every backend in
/// lockstep with a reference graph and assert agreement after every step.
fn conformance_run(context: &str, graph: &Graph, updates: &[Update]) {
    let mut reference = graph.clone();
    let mut maintainers: Vec<(String, Box<dyn DfsMaintainer>)> = contenders()
        .into_iter()
        .map(|(name, builder)| (name, builder.build(graph)))
        .collect();

    for (i, update) in updates.iter().enumerate() {
        reference.apply(update);
        let (labels, component_count) = connected_components(&reference);

        for (name, dfs) in &mut maintainers {
            dfs.apply_update(update);
            dfs.check().unwrap_or_else(|e| {
                panic!("{context}: {name}, update {i} ({update:?}) broke the DFS tree: {e}")
            });

            // Component count: one forest root per component.
            assert_eq!(
                dfs.forest_roots().len(),
                component_count,
                "{context}: {name}, update {i}: component count"
            );

            // Exact component structure against the reference labels, on the
            // whole (padded) id space.
            let cap = reference.capacity() as u32;
            for a in 0..cap {
                if !reference.is_active(a) {
                    assert!(
                        dfs.forest_parent(a).is_none(),
                        "{context}: {name}, update {i}: deleted vertex {a} still has a parent"
                    );
                    continue;
                }
                for b in (a + 1)..cap {
                    if !reference.is_active(b) {
                        continue;
                    }
                    let same = labels[a as usize] == labels[b as usize];
                    assert_eq!(
                        dfs.same_component(a, b),
                        same,
                        "{context}: {name}, update {i}: connectivity disagrees on ({a},{b})"
                    );
                }
            }

            // Forest parents stay inside the component (spot consistency
            // between the two query surfaces).
            for a in 0..cap {
                if let Some(p) = dfs.forest_parent(a) {
                    assert!(
                        dfs.same_component(a, p),
                        "{context}: {name}, update {i}: parent {p} of {a} in another component"
                    );
                }
            }
        }

        // Vertex-count agreement across all backends.
        let counts: Vec<usize> = maintainers.iter().map(|(_, d)| d.num_vertices()).collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{context}: update {i}: vertex counts diverge: {counts:?}"
        );
    }
}

#[test]
fn conformance_random_mixed_updates() {
    let mut rng = ChaCha8Rng::seed_from_u64(2027);
    for trial in 0..3 {
        let n = 20 + 10 * trial;
        let g = generators::random_connected_gnm(n, 3 * n, &mut rng);
        let updates = random_update_sequence(&g, 15, &UpdateMix::default(), &mut rng);
        conformance_run(&format!("random trial {trial}"), &g, &updates);
    }
}

#[test]
fn conformance_edge_churn_on_adversarial_shapes() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let shapes: Vec<(&str, Graph)> = vec![
        ("path", generators::path(40)),
        ("broom", generators::broom(20, 20)),
        ("caterpillar", generators::caterpillar(12, 2)),
        ("path_of_cliques", generators::path_of_cliques(8, 5)),
    ];
    for (name, g) in shapes {
        let updates = random_update_sequence(&g, 12, &UpdateMix::edges_only(), &mut rng);
        conformance_run(name, &g, &updates);
    }
}

#[test]
fn conformance_disconnecting_and_reconnecting() {
    // Deterministic scripted sequence hitting the component-splitting paths:
    // cut a path in the middle, cut again, reconnect differently, drop and
    // re-grow vertices.
    let g = generators::path(12);
    let updates = vec![
        Update::DeleteEdge(5, 6),
        Update::DeleteEdge(2, 3),
        Update::InsertEdge(0, 11),
        Update::DeleteVertex(8),
        Update::InsertVertex { edges: vec![2, 3] },
        Update::InsertEdge(5, 7),
        Update::DeleteEdge(0, 11),
    ];
    conformance_run("scripted split/rejoin", &g, &updates);
}

#[test]
fn conformance_batch_equals_one_by_one() {
    // For every backend: applying a batch through apply_batch must leave the
    // maintainer in a state component-equivalent to applying the updates one
    // by one, and the report must cover every update.
    let mut rng = ChaCha8Rng::seed_from_u64(555);
    let g = generators::random_connected_gnm(30, 80, &mut rng);
    let updates = random_update_sequence(&g, 10, &UpdateMix::default(), &mut rng);

    let mut reference = g.clone();
    for u in &updates {
        reference.apply(u);
    }
    let (labels, component_count) = connected_components(&reference);

    for (name, builder) in contenders() {
        let mut batched = builder.build(&g);
        let report = batched.apply_batch(&updates);
        assert_eq!(report.applied(), updates.len(), "{name}");
        assert_eq!(report.per_update.len(), updates.len(), "{name}");
        batched
            .check()
            .unwrap_or_else(|e| panic!("{name}: batch apply broke the tree: {e}"));

        let mut stepped = builder.build(&g);
        for u in &updates {
            stepped.apply_update(u);
        }

        assert_eq!(
            batched.forest_roots().len(),
            component_count,
            "{name}: batched component count"
        );
        let cap = reference.capacity() as u32;
        for a in 0..cap {
            for b in (a + 1)..cap {
                if !reference.is_active(a) || !reference.is_active(b) {
                    continue;
                }
                let same = labels[a as usize] == labels[b as usize];
                assert_eq!(
                    batched.same_component(a, b),
                    same,
                    "{name}: batched ({a},{b})"
                );
                assert_eq!(
                    stepped.same_component(a, b),
                    same,
                    "{name}: stepped ({a},{b})"
                );
            }
        }
    }
}

#[test]
fn conformance_checked_mode_accepts_all_backends() {
    // CheckMode::EveryUpdate wraps every backend; a short mixed run must not
    // trip it.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let g = generators::random_connected_gnm(25, 60, &mut rng);
    let updates = random_update_sequence(&g, 8, &UpdateMix::default(), &mut rng);
    for (name, builder) in contenders() {
        let mut dfs = builder.check_mode(CheckMode::EveryUpdate).build(&g);
        for u in &updates {
            dfs.apply_update(u);
        }
        assert!(dfs.check().is_ok(), "{name}");
    }
}
