//! Stress suite for the `pardfs-serve` epoch-snapshot serving layer.
//!
//! The serving contract under test (see `crates/serve/src/lib.rs`):
//!
//! * **No torn reads, ever.** A reader that recomputes the tree fingerprint
//!   of any snapshot it observes — *while commits are racing* — must get the
//!   snapshot's own capture-time fingerprint, and that fingerprint must
//!   appear in the server's epoch log. Readers here check every single
//!   observation (the `ConcurrentScenarioRunner` amortizes the check over
//!   epoch changes; this suite does not).
//! * **Group commit.** Concurrent submissions queued before a commit are
//!   absorbed into one `apply_batch` epoch, not one epoch each.
//! * **Serving equivalence.** Replaying a trace through the server (writer
//!   group-committing the recorded batches) leaves exactly the tree a
//!   single-threaded `ScenarioRunner` replay leaves, for every backend.
//! * **Replica agreement.** Every shard of a `ShardRouter` broadcast commit
//!   holds the same tree, and reads route to a valid shard by component
//!   affinity.
//! * **Migration atomicity.** A `PartitionedRouter` cross-shard component
//!   migration — which tears a component out of one shard's maintainer and
//!   resumes another shard's from the merged state — must be invisible to
//!   concurrent readers: every observed view recomputes to its own
//!   fingerprint and appears in the router's epoch log, even while
//!   migrations race underneath.
//!
//! The CI `serve-stress` job runs this suite under `PARDFS_THREADS=1,4`, so
//! the reader/writer interleavings race against both a serial and a genuinely
//! parallel maintainer underneath.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{generators, Update};
use pardfs::scenario::ScenarioRunner;
use pardfs::{Backend, ConcurrentScenarioRunner, ForestQuery, MaintainerBuilder, Scenario, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};

/// Seeded update sequence, valid when applied in order to `graph`.
fn update_sequence(graph: &pardfs::Graph, updates: usize, seed: u64) -> Vec<Update> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    random_update_sequence(graph, updates, &UpdateMix::default(), &mut rng)
}

#[test]
fn four_readers_mid_commit_never_observe_a_torn_snapshot() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E21);
    let graph = generators::random_connected_gnm(128, 384, &mut rng);
    let updates = update_sequence(&graph, 60, 0x5E22);

    let mut server = Server::new(MaintainerBuilder::new(Backend::Parallel).build(&graph));
    let write_handle = server.write_handle();
    let done = AtomicBool::new(false);

    let tallies: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = server.read_handle();
                let done = &done;
                scope.spawn(move || {
                    // Check EVERY observation, not just epoch changes: a torn
                    // publish that heals before the next epoch would slip an
                    // amortized census.
                    let mut observations = 0u64;
                    let mut torn = 0u64;
                    let mut last_epoch = 0u64;
                    loop {
                        let snap = handle.snapshot();
                        assert!(
                            snap.epoch() >= last_epoch,
                            "published epoch moved backwards"
                        );
                        last_epoch = snap.epoch();
                        let recomputed = snap.tree().fingerprint();
                        if recomputed != snap.fingerprint()
                            || handle.recorded_fingerprint(snap.epoch()) != Some(recomputed)
                        {
                            torn += 1;
                        }
                        observations += 1;
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    (observations, torn)
                })
            })
            .collect();

        // The writer commits one small epoch per chunk while the readers
        // hammer the published pointer.
        for chunk in updates.chunks(3) {
            write_handle.submit(chunk.to_vec());
            server
                .commit()
                .expect("the chunk submitted above is queued");
        }
        done.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|r| r.join().expect("reader panicked"))
            .collect()
    });

    let observations: u64 = tallies.iter().map(|t| t.0).sum();
    let torn: u64 = tallies.iter().map(|t| t.1).sum();
    assert!(observations >= 4, "every reader observed at least once");
    assert_eq!(torn, 0, "torn snapshots across {observations} observations");
    // The writer committed every chunk: epoch 0 plus one record per chunk.
    assert_eq!(server.epochs().len(), 1 + updates.chunks(3).count());
    server.maintainer().check().expect("final tree stays valid");
}

#[test]
fn group_commit_absorbs_concurrent_submissions_into_one_epoch() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E23);
    let graph = generators::random_connected_gnm(96, 288, &mut rng);
    let updates = update_sequence(&graph, 10, 0x5E24);

    let mut server = Server::new(MaintainerBuilder::new(Backend::Sequential).build(&graph));
    // Five writers enqueue one batch each before anything commits…
    std::thread::scope(|scope| {
        for chunk in updates.chunks(2) {
            let writer = server.write_handle();
            scope.spawn(move || writer.submit(chunk.to_vec()));
        }
    });
    // …and one commit drains them all into a single epoch.
    let stats = server.commit().expect("five batches queued");
    assert_eq!(stats.record.epoch, 1);
    assert_eq!(stats.record.submissions, 5);
    assert_eq!(stats.record.updates, updates.len());
    assert_eq!(stats.report.applied(), updates.len());
    assert!(server.commit().is_none(), "queue fully drained");
    assert_eq!(server.epochs().len(), 2, "epoch 0 + the group commit");
}

#[test]
fn serving_a_trace_matches_the_single_threaded_replay_on_every_backend() {
    let trace = Scenario::ReadMostly.record(64, 0x5E25);
    for backend in Backend::all_default() {
        // Single-threaded reference replay of the same trace.
        let mut reference = MaintainerBuilder::new(backend).build(&trace.initial_graph());
        let outcome = ScenarioRunner::new(&trace).run(reference.as_mut());

        let served = ConcurrentScenarioRunner::new(&trace, 4)
            .run(MaintainerBuilder::new(backend).build(&trace.initial_graph()));
        assert_eq!(served.torn_snapshots, 0, "{backend:?}: torn snapshot");
        assert_eq!(
            served.final_fingerprint, outcome.tree_fingerprint,
            "{backend:?}: served final tree diverged from the single-threaded replay"
        );
        assert_eq!(
            served.updates_applied,
            outcome.updates_applied(),
            "{backend:?}: served replay dropped updates"
        );
        assert!(
            served.queries_answered > 0 && served.reader_passes >= 4,
            "{backend:?}: every reader completes at least one pass"
        );
        // One group-commit epoch per recorded update batch, plus epoch 0.
        let update_batches = trace
            .phases
            .iter()
            .flat_map(|p| &p.batches)
            .filter(|b| matches!(b, pardfs::scenario::TraceBatch::Updates(_)))
            .count();
        assert_eq!(served.epochs.len(), 1 + update_batches, "{backend:?}");
    }
}

#[test]
fn migrations_under_concurrent_readers_never_tear_a_view() {
    // Two disjoint 48-vertex clusters on two shards; the writer repeatedly
    // bridges them (cross-shard merge ⇒ migration), churns, and cuts the
    // bridge again, while four readers validate every observed view.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E28);
    let cs = 48u32;
    let mut graph = pardfs::Graph::new(2 * cs as usize);
    for half in 0..2u32 {
        let cluster = generators::random_connected_gnm(cs as usize, 3 * cs as usize, &mut rng);
        for e in cluster.edges() {
            graph.insert_edge(half * cs + e.0, half * cs + e.1);
        }
    }
    let mut batches: Vec<Vec<Update>> = Vec::new();
    for wave in 0..12u32 {
        // Fresh singletons land round-robin on shard `id mod 2`; attaching
        // each to the cluster the *other* shard owns (ids alternate parity)
        // makes every attach batch a cross-shard merge ⇒ one migration per
        // wave racing the readers. (The clusters themselves never move:
        // the 48-vertex component always beats the singleton.)
        let new_id = 2 * cs + wave;
        let target = if new_id.is_multiple_of(2) {
            cs + wave
        } else {
            wave
        };
        batches.push(vec![Update::InsertVertex { edges: vec![] }]);
        batches.push(vec![Update::InsertEdge(new_id, target)]);
    }
    // Finish with a whole-cluster migration: bridging the two (now
    // singleton-augmented, equal-sized) clusters ties on size, so the
    // smaller component id — cluster 0 — wins and cluster 1 moves wholesale.
    batches.push(vec![Update::InsertEdge(0, cs)]);

    let mut router = MaintainerBuilder::new(Backend::Parallel)
        .partitioned_shards(2)
        .serve_partitioned(&graph);
    assert_eq!(router.ownership().counts(), vec![cs as usize, cs as usize]);
    let read_handle = router.read_handle();
    let done = AtomicBool::new(false);

    let tallies: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let handle = read_handle.clone();
                let done = &done;
                scope.spawn(move || {
                    // Check EVERY observation (the workload runner amortizes
                    // over epoch changes; this suite does not).
                    let mut observations = 0u64;
                    let mut torn = 0u64;
                    let mut last_epoch = 0u64;
                    loop {
                        let view = handle.view();
                        assert!(
                            view.epoch() >= last_epoch,
                            "published epoch moved backwards"
                        );
                        last_epoch = view.epoch();
                        let recomputed = view.recompute_fingerprint();
                        if recomputed != view.fingerprint()
                            || handle.recorded_fingerprint(view.epoch()) != Some(recomputed)
                        {
                            torn += 1;
                        }
                        observations += 1;
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    (observations, torn)
                })
            })
            .collect();

        for batch in &batches {
            router.commit(batch).expect("stress batches are non-empty");
        }
        done.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|r| r.join().expect("reader panicked"))
            .collect()
    });

    let observations: u64 = tallies.iter().map(|t| t.0).sum();
    let torn: u64 = tallies.iter().map(|t| t.1).sum();
    assert!(observations >= 4, "every reader observed at least once");
    assert_eq!(torn, 0, "torn views across {observations} observations");
    assert_eq!(
        router.stats().migrations,
        13,
        "one migration per singleton wave plus the final cluster merge"
    );
    assert_eq!(read_handle.epochs().len(), 1 + batches.len());
    // Post-storm: both shards hold valid trees and the assembled forest is
    // one component on shard 0 (cluster 0 won the final tie).
    for server in router.servers() {
        server.maintainer().check().expect("shard tree stays valid");
    }
    let view = read_handle.view();
    assert!(view.same_component(0, cs), "everything merged at the end");
    assert_eq!(view.num_vertices(), 2 * cs as usize + 12);
    assert_eq!(router.ownership().counts(), vec![2 * cs as usize + 12, 0]);
}

#[test]
fn sharded_router_replicas_agree_and_route_by_component() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E26);
    let graph = generators::random_connected_gnm(80, 240, &mut rng);
    let updates = update_sequence(&graph, 24, 0x5E27);

    let mut router = MaintainerBuilder::new(Backend::Parallel)
        .shards(3)
        .serve(&graph);
    assert_eq!(router.num_shards(), 3);

    for chunk in updates.chunks(4) {
        let commits = router.commit(chunk);
        assert_eq!(commits.len(), 3, "one commit per shard");
        // Replicated writes: every shard commits the same epoch and lands
        // on the same tree.
        for stats in &commits[1..] {
            assert_eq!(stats.record.epoch, commits[0].record.epoch);
            assert_eq!(stats.record.fingerprint, commits[0].record.fingerprint);
        }
        // The merged roll-up is the whole group's work for the epoch: with
        // replicated writes, every shard absorbs the full chunk.
        let rollup = pardfs::ShardRouter::merged_rollup(&commits);
        assert_eq!(rollup.updates, (3 * chunk.len()) as u64);
    }

    // Affinity reads: every vertex routes to a valid shard, and the shard's
    // snapshot answers exactly like shard 0's (replicas agree).
    let reference = router.read_handle(0).snapshot();
    for v in 0..reference.num_vertices() as pardfs::Vertex {
        let shard = router.shard_for(v);
        assert!(shard < router.num_shards());
        let snap = router.snapshot_for(v);
        assert_eq!(
            snap.forest_parent(v),
            reference.forest_parent(v),
            "shard {shard} disagrees on vertex {v}"
        );
    }
    // Whole-forest queries route to shard 0 by the v1 rules.
    assert_eq!(router.shard_for(u32::MAX), 0);
    assert_eq!(
        router.read_handle(0).snapshot().forest_roots(),
        reference.forest_roots()
    );
}
