//! Corpus replay suite: every checked-in trace under `tests/corpus/` is
//! parsed, round-tripped, and replayed on **all five** backends; the replay
//! fingerprints must match the ones recorded in the file.
//!
//! The `scenario-corpus` CI job runs this at `PARDFS_THREADS=1` and `4`, so
//! a backend whose answer on a frozen workload drifts — across commits *or*
//! across thread counts — fails the PR with the exact trace named. A change
//! that legitimately alters what a backend computes must regenerate the
//! corpus (`cargo run --release -p pardfs-bench --bin record_corpus`) and
//! commit the diff, making the behavioural change reviewable.
//!
//! The `--ignored` deep sweep re-records every scenario family at a larger
//! size and replays it everywhere (nightly CI; set `SCENARIO_SWEEP_DIR` to
//! keep the per-backend roll-up summaries as an artifact).

use pardfs::{Backend, MaintainerBuilder, Scenario, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_traces() -> Vec<(String, Trace, String)> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "trace"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable trace");
            let trace =
                Trace::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            (name, trace, text)
        })
        .collect()
}

#[test]
fn corpus_is_nonempty_and_round_trips_byte_identically() {
    let traces = corpus_traces();
    assert!(
        traces.len() >= 3,
        "the corpus must hold at least 3 traces, found {}",
        traces.len()
    );
    for (name, trace, text) in &traces {
        assert_eq!(
            &trace.render(),
            text,
            "{name}: checked-in bytes are not the canonical rendering"
        );
        // Every corpus trace must carry the full fingerprint set — the
        // replay test below silently skips absent keys, so absence here
        // would hollow the suite out.
        assert!(trace.fingerprint("components").is_some(), "{name}");
        assert!(trace.fingerprint("queries").is_some(), "{name}");
        for backend in [
            "parallel",
            "sequential",
            "streaming",
            "congest",
            "fault-tolerant",
        ] {
            assert!(
                trace.fingerprint(&format!("tree {backend}")).is_some(),
                "{name}: missing tree fingerprint for {backend}"
            );
        }
    }
}

#[test]
fn corpus_replays_match_recorded_fingerprints_on_every_backend() {
    for (name, trace, _) in corpus_traces() {
        for backend in Backend::all_default() {
            let (dfs, outcome) = MaintainerBuilder::new(backend).run_scenario(&trace);
            dfs.check()
                .unwrap_or_else(|e| panic!("{name}/{}: invalid final tree: {e}", outcome.backend));
            outcome
                .verify_against(&trace)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                outcome.updates_applied() as usize,
                trace.num_updates(),
                "{name}/{}: dropped updates",
                outcome.backend
            );
        }
    }
}

/// Nightly deep sweep: freshly record every scenario family at a larger
/// size, replay it on every backend, and require cross-backend agreement on
/// the backend-independent fingerprints plus a valid tree everywhere.
#[test]
#[ignore]
fn deep_scenario_sweep() {
    let n = 384;
    let mut summary = String::new();
    for (i, scenario) in Scenario::all().into_iter().enumerate() {
        let trace = scenario.record(n, 0xDEEB + i as u64);
        let mut reference: Option<(u64, u64)> = None;
        for backend in Backend::all_default() {
            let (dfs, outcome) = MaintainerBuilder::new(backend).run_scenario(&trace);
            dfs.check().unwrap_or_else(|e| {
                panic!(
                    "{}/{}: invalid final tree: {e}",
                    scenario.name(),
                    outcome.backend
                )
            });
            match reference {
                None => {
                    reference = Some((outcome.components_fingerprint, outcome.queries_fingerprint));
                }
                Some(expected) => assert_eq!(
                    (outcome.components_fingerprint, outcome.queries_fingerprint),
                    expected,
                    "{}/{}: backend-independent answers diverged",
                    scenario.name(),
                    outcome.backend
                ),
            }
            let rollup = outcome.rollup();
            let _ = writeln!(
                summary,
                "{} {} updates={} queries={} query_sets={} relinked={} patches={} rebuilds={} \
                 tree={:016x}",
                scenario.name(),
                outcome.backend,
                outcome.updates_applied(),
                outcome.queries_answered(),
                rollup.query_sets,
                rollup.relinked_vertices,
                outcome.index().patches_applied,
                outcome.index().full_rebuilds,
                outcome.tree_fingerprint,
            );
        }
    }
    print!("{summary}");
    if let Some(dir) = std::env::var_os("SCENARIO_SWEEP_DIR") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create sweep dir");
        std::fs::write(dir.join(format!("sweep_n{n}.txt")), summary).expect("write sweep summary");
    }
}
