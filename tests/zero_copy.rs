//! Pins the zero-copy contract of the v2 read path.
//!
//! `pardfs::graph::snap::copied_array_bytes()` is a process-wide counter
//! charged by the materializing array reader (`Cursor::u32s`) — every byte
//! of `GADJ`/`GDEG`/`TPAR` payload that gets copied into an owned `Vec`
//! moves it. The borrowed views ([`pardfs::GraphView`],
//! [`pardfs::TreeView`], [`pardfs::CheckpointView`], [`pardfs::MappedEpoch`])
//! must answer queries straight out of the mapped or in-memory buffer, so
//! across *validate + query* the counter must not move at all.
//!
//! This pin lives in its own integration-test binary on purpose: the counter
//! is process-global, and any concurrently running test that parses a
//! checkpoint the materializing way would charge it mid-measurement.

use pardfs::graph::generators;
use pardfs::graph::snap::copied_array_bytes;
use pardfs::wal::{Checkpoint, CheckpointView};
use pardfs::{Backend, ForestQuery, MaintainerBuilder, Snapshot, Update};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

#[test]
fn view_backed_reads_copy_zero_array_bytes() {
    // Churn a graph through a live maintainer so the captured state is not
    // a pristine generator output.
    let mut rng = ChaCha8Rng::seed_from_u64(0x0C0);
    let g = generators::random_connected_gnm(96, 280, &mut rng);
    let mut dfs = MaintainerBuilder::new(Backend::Parallel).build(&g);
    for _ in 0..40 {
        let u = rng.gen_range(0..96);
        let v = rng.gen_range(0..96);
        if u != v {
            dfs.apply_update(&Update::InsertEdge(u, v));
        }
    }
    let ckpt = Checkpoint::capture(11, dfs.as_ref());
    let v2 = ckpt.render_binary();

    // --- View path: validate once, then borrow. Zero array bytes copied. ---
    let before = copied_array_bytes();
    let view = CheckpointView::parse(&v2).expect("v2 checkpoint validates");
    let graph = view.graph();
    let tree = view.tree();
    let mut degree_sum = 0usize;
    for v in 0..graph.capacity() as u32 {
        degree_sum += graph.neighbours(v).len();
        if let Some(&w) = graph.neighbours(v).first() {
            assert!(graph.neighbours(w).contains(&v), "symmetry at {v}");
        }
        let _ = tree.parent(v);
        let _ = tree.depth_one_ancestor(v);
    }
    assert_eq!(degree_sum, 2 * graph.num_edges());
    assert_eq!(
        copied_array_bytes(),
        before,
        "the borrowed view path copied array bytes"
    );

    // --- Mapped serving path: publish an epoch file, open it mmapped, and
    // answer forest queries — still zero array bytes copied. ---
    let dir = std::env::temp_dir().join(format!("pardfs-zero-copy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.epoch");
    Snapshot::capture(11, dfs.as_ref())
        .publish_to(&path)
        .unwrap();
    let before = copied_array_bytes();
    let mapped = Snapshot::open_mapped(&path).expect("published epoch opens");
    for v in 0..mapped.num_vertices() as u32 {
        let _ = mapped.forest_parent(v);
        assert!(mapped.same_component(v, v));
    }
    assert_eq!(
        copied_array_bytes(),
        before,
        "the mapped epoch read path copied array bytes"
    );
    std::fs::remove_dir_all(&dir).ok();

    // --- Materializing path: the same bytes, parsed the copying way, must
    // charge at least the three u32 array payloads (adjacency, degrees,
    // parents). This is what makes the zero above meaningful. ---
    let before = copied_array_bytes();
    let loaded = Checkpoint::parse_any(&v2).expect("materializing parse");
    let floor = 4 * (2 * loaded.graph.num_edges() + 2 * loaded.graph.capacity()) as u64;
    assert!(
        copied_array_bytes() >= before + floor,
        "materializing parse should copy at least {floor} array bytes"
    );
}
