//! Differential suite for the snapshot codecs: the legacy line-oriented
//! text format, the `pardfs-snap v1` binary container and the v2
//! (alignment-padded) container must all describe the same state, and a
//! binary-loaded structure must be indistinguishable from a freshly built
//! one — not just equal at load time, but equally *usable* (further updates
//! applied to both must keep them identical).
//!
//! Covered here at the workspace level (each crate pins its own framing
//! details in unit tests):
//! * binary round trip ≡ identity for [`Graph`] and
//!   [`pardfs::tree::TreeIndex`], including byte-stability of
//!   `render(parse(render(x)))`;
//! * text ↔ binary cross-codec equivalence: parsing one rendering and
//!   re-rendering through the other converges;
//! * a binary-loaded graph stays behaviourally identical under continued
//!   mutation;
//! * [`Checkpoint`] containers agree across **all three** codecs — and the
//!   zero-copy [`CheckpointView`] over the v2 bytes materializes the same
//!   state — for every backend;
//! * corruption at *every byte offset* and truncation at *every length* of
//!   both binary generations is rejected rather than silently absorbed, by
//!   the materializing parser and the view alike.

use pardfs::graph::generators;
use pardfs::seq::static_dfs_index;
use pardfs::wal::{Checkpoint, CheckpointView};
use pardfs::{Backend, Graph, MaintainerBuilder, Update};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A connected random graph plus a burst of mutations so the arena has seen
/// growth, shrinkage and vertex churn (not just a freshly packed layout).
fn churned_graph(seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generators::random_connected_gnm(120, 360, &mut rng);
    for _ in 0..60 {
        let u = rng.gen_range(0..g.capacity() as u32);
        let v = rng.gen_range(0..g.capacity() as u32);
        if u != v && g.is_active(u) && g.is_active(v) && !g.has_edge(u, v) {
            g.insert_edge(u, v);
        }
    }
    for _ in 0..40 {
        let u = rng.gen_range(0..g.capacity() as u32);
        if g.is_active(u) && g.degree(u) > 2 {
            let v = g.neighbors(u)[0];
            g.delete_edge(u, v);
        }
    }
    g
}

#[test]
fn binary_loaded_graph_is_indistinguishable_from_a_freshly_built_one() {
    let fresh = churned_graph(0xC0DEC);
    let loaded =
        Graph::parse_snapshot_binary(&fresh.render_snapshot_binary()).expect("own bytes parse");
    assert_eq!(loaded, fresh, "binary round trip changed the graph");

    // The loaded arena must be fully usable, not merely equal at load time:
    // drive both copies through the same further mutations and they must
    // stay identical (including adjacency order, which shapes DFS trees).
    let mut a = fresh.clone();
    let mut b = loaded;
    let w = a.insert_vertex(&[0, 1, 2]);
    assert_eq!(w, b.insert_vertex(&[0, 1, 2]));
    a.delete_edge(0, a.neighbors(0)[0]);
    b.delete_edge(0, b.neighbors(0)[0]);
    a.insert_edge(w, 5);
    b.insert_edge(w, 5);
    assert_eq!(a, b, "binary-loaded graph diverged under further updates");
    assert_eq!(
        static_dfs_index(&a, 0).fingerprint(),
        static_dfs_index(&b, 0).fingerprint(),
        "binary-loaded graph produced a different DFS tree"
    );
}

#[test]
fn text_and_binary_graph_codecs_agree_and_binary_is_byte_stable() {
    let g = churned_graph(0xA11CE);
    let via_text = Graph::parse_snapshot(&g.render_snapshot()).expect("text parses");
    let via_binary = Graph::parse_snapshot_binary(&g.render_snapshot_binary()).expect("bin parses");
    assert_eq!(via_text, via_binary, "codecs disagree about the graph");

    // Cross-codec: text-loaded state re-rendered as binary must equal the
    // direct binary rendering — and parse(render(x)) must be byte-stable.
    let bytes = g.render_snapshot_binary();
    assert_eq!(via_text.render_snapshot_binary(), bytes);
    assert_eq!(
        Graph::parse_snapshot_binary(&bytes)
            .unwrap()
            .render_snapshot_binary(),
        bytes,
        "binary rendering is not byte-stable across a round trip"
    );
}

#[test]
fn text_and_binary_tree_codecs_agree_and_binary_is_byte_stable() {
    let g = churned_graph(0x7EE);
    let idx = static_dfs_index(&g, 0);
    let via_text =
        pardfs::tree::TreeIndex::parse_snapshot(&idx.render_snapshot()).expect("text parses");
    let via_binary = pardfs::tree::TreeIndex::parse_snapshot_binary(&idx.render_snapshot_binary())
        .expect("bin parses");
    via_text
        .structural_eq(&idx)
        .expect("text round trip changed the tree");
    via_binary
        .structural_eq(&idx)
        .expect("binary round trip changed the tree");
    assert_eq!(via_binary.fingerprint(), idx.fingerprint());

    let bytes = idx.render_snapshot_binary();
    assert_eq!(via_text.render_snapshot_binary(), bytes);
    assert_eq!(via_binary.render_snapshot_binary(), bytes);
}

#[test]
fn checkpoint_codecs_agree_for_every_backend() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCC);
    let g = generators::random_connected_gnm(64, 160, &mut rng);
    let updates: Vec<Update> = vec![
        Update::DeleteEdge(0, g.neighbors(0)[0]),
        Update::InsertEdge(1, 40),
        Update::InsertVertex {
            edges: vec![2, 3, 9],
        },
    ];
    for backend in Backend::all_default() {
        let mut dfs = MaintainerBuilder::new(backend).build(&g);
        dfs.apply_batch(&updates);
        let ckpt = Checkpoint::capture(7, dfs.as_ref());
        let from_text = Checkpoint::parse(&ckpt.render()).expect("text checkpoint parses");
        let from_v1 =
            Checkpoint::parse_any(&ckpt.render_binary_v1()).expect("v1 checkpoint parses");
        let v2 = ckpt.render_binary();
        let from_v2 = Checkpoint::parse_any(&v2).expect("v2 checkpoint parses");
        // The zero-copy view over the v2 bytes must materialize the same
        // state the copying parsers produce.
        let view = CheckpointView::parse(&v2).expect("v2 checkpoint validates as a view");
        assert_eq!(view.epoch, 7);
        assert_eq!(view.backend(), ckpt.backend);
        let (view_graph, view_tree) = view.materialize().expect("view materializes");
        let from_view = Checkpoint {
            epoch: view.epoch,
            backend: view.backend().to_string(),
            fingerprint: view.fingerprint,
            graph: view_graph,
            tree: view_tree,
        };
        for (label, loaded) in [
            ("text", &from_text),
            ("v1", &from_v1),
            ("v2", &from_v2),
            ("view", &from_view),
        ] {
            assert_eq!(loaded.epoch, 7, "{label}: epoch");
            assert_eq!(loaded.backend, ckpt.backend, "{label}: backend");
            assert_eq!(loaded.fingerprint, ckpt.fingerprint, "{label}: fingerprint");
            assert_eq!(loaded.graph, ckpt.graph, "{label}: graph");
            loaded
                .tree
                .structural_eq(&ckpt.tree)
                .unwrap_or_else(|e| panic!("{label}: tree diverged: {e}"));
        }
    }
}

#[test]
fn corrupting_any_region_of_a_binary_checkpoint_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBAD);
    let g = generators::random_connected_gnm(48, 100, &mut rng);
    let dfs = MaintainerBuilder::new(Backend::Sequential).build(&g);
    let ckpt = Checkpoint::capture(3, dfs.as_ref());
    for (gen, bytes) in [
        ("v1", ckpt.render_binary_v1()),
        ("v2", ckpt.render_binary()),
    ] {
        assert!(
            Checkpoint::parse_any(&bytes).is_ok(),
            "{gen}: good bytes parse"
        );

        // Flip one byte at *every* offset of the file — magic, section
        // table, alignment padding, each payload, checksum. Every flip must
        // surface as an error through the materializing parser, and through
        // the zero-copy view for v2: the whole-file checksum guards regions
        // no structural validation reaches.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                Checkpoint::parse_any(&bad).is_err(),
                "{gen}: flip at byte {i}/{} was silently accepted",
                bytes.len()
            );
            if gen == "v2" {
                assert!(
                    CheckpointView::parse(&bad).is_err(),
                    "{gen}: flip at byte {i}/{} was accepted by the view",
                    bytes.len()
                );
            }
        }
        // Truncation at *every* length is rejected too (never a partial
        // load), by both paths.
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::parse_any(&bytes[..cut]).is_err(),
                "{gen}: truncation to {cut} bytes was silently accepted"
            );
            if gen == "v2" {
                assert!(
                    CheckpointView::parse(&bytes[..cut]).is_err(),
                    "{gen}: truncation to {cut} bytes was accepted by the view"
                );
            }
        }
        // A v1 body never validates as a zero-copy view (no alignment
        // guarantee to borrow against) — it must be *rejected*, not
        // misread.
        if gen == "v1" {
            assert!(
                CheckpointView::parse(&bytes).unwrap_err().contains("v2"),
                "a v1 checkpoint must not open as a view"
            );
        }
    }
}
