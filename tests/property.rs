//! Property-based tests (proptest): for arbitrary random graphs and arbitrary
//! valid update sequences, every maintainer always produces a valid DFS
//! forest, and the data structure `D` always agrees with a brute-force scan.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{generators, Graph};
use pardfs::query::{QueryOracle, StructureD, VertexQuery};
use pardfs::seq::augment::AugmentedGraph;
use pardfs::seq::static_dfs::static_dfs;
use pardfs::tree::TreeIndex;
use pardfs::{DynamicDfs, FaultTolerantDfs, Strategy, StreamingDynamicDfs};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Strategy: the seed fully determines the graph and the update sequence, so
/// shrinking stays meaningful and failures are reproducible from the seed.
fn graph_and_updates(
    seed: u64,
    n: usize,
    extra_edges: usize,
    updates: usize,
) -> (Graph, Vec<pardfs::Update>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = (n - 1 + extra_edges).min(n * (n - 1) / 2);
    let g = generators::random_connected_gnm(n, m, &mut rng);
    let ups = random_update_sequence(&g, updates, &UpdateMix::default(), &mut rng);
    (g, ups)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dynamic_dfs_is_always_a_dfs_tree(
        seed in any::<u64>(),
        n in 5usize..40,
        extra in 0usize..60,
        strategy_phased in any::<bool>(),
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, 15);
        let strategy = if strategy_phased { Strategy::Phased } else { Strategy::Simple };
        let mut dfs = DynamicDfs::with_strategy(&g, strategy);
        for u in &updates {
            dfs.apply_update(u);
            prop_assert!(dfs.check().is_ok(), "{:?} after {u:?}: {:?}", strategy, dfs.check());
        }
    }

    #[test]
    fn streaming_dfs_is_always_a_dfs_tree(
        seed in any::<u64>(),
        n in 5usize..30,
        extra in 0usize..40,
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, 10);
        let mut dfs = StreamingDynamicDfs::new(&g);
        for u in &updates {
            dfs.apply_update(u);
            prop_assert!(dfs.check().is_ok(), "after {u:?}: {:?}", dfs.check());
        }
    }

    #[test]
    fn fault_tolerant_batches_are_always_dfs_trees(
        seed in any::<u64>(),
        n in 5usize..30,
        extra in 0usize..40,
        k in 1usize..6,
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, k);
        let mut ft = FaultTolerantDfs::new(&g);
        let result = ft.tree_after(&updates);
        prop_assert!(result.check().is_ok(), "{:?}", result.check());
        // A second, different batch from the same preprocessed structure.
        let (_, updates2) = graph_and_updates(seed.wrapping_add(1), n, extra, k);
        let result2 = ft.tree_after(&updates2);
        prop_assert!(result2.check().is_ok(), "{:?}", result2.check());
    }

    #[test]
    fn structure_d_agrees_with_brute_force(
        seed in any::<u64>(),
        n in 5usize..50,
        extra in 0usize..80,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = generators::random_connected_gnm(n, m, &mut rng);
        let aug = AugmentedGraph::new(&g);
        let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let d = StructureD::build(aug.graph(), idx.clone());
        let verts = idx.pre_order_vertices();
        for _ in 0..50 {
            let w = verts[rng.gen_range(0..verts.len())];
            let a = verts[rng.gen_range(0..verts.len())];
            let anc = idx.ancestor_at_level(a, rng.gen_range(0..=idx.level(a)));
            let (near, far) = if rng.gen_bool(0.5) { (a, anc) } else { (anc, a) };
            let got = d.answer_batch(&[VertexQuery::new(w, near, far)])[0];
            // Brute force over the augmented graph's adjacency.
            let expected = aug
                .graph()
                .neighbors(w)
                .iter()
                .copied()
                .filter(|&z| {
                    (idx.is_ancestor(near, z) && idx.is_ancestor(z, far))
                        || (idx.is_ancestor(far, z) && idx.is_ancestor(z, near))
                })
                .map(|z| idx.level(z).abs_diff(idx.level(near)))
                .min();
            prop_assert_eq!(got.map(|h| h.rank_from_near), expected);
        }
    }
}

#[test]
fn proptest_regression_smoke() {
    // A fixed case exercising all maintainers quickly, so failures in the
    // proptest harness configuration itself are caught deterministically.
    let (g, updates) = graph_and_updates(7, 20, 20, 10);
    let mut dfs = DynamicDfs::new(&g);
    for u in &updates {
        dfs.apply_update(u);
    }
    dfs.check().unwrap();
}
