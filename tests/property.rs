//! Property-based tests (proptest): for arbitrary random graphs and arbitrary
//! valid update sequences, every maintainer always produces a valid DFS
//! forest, and the data structure `D` always agrees with a brute-force scan.
//!
//! The **differential suite** locks in the incremental `StructureD`
//! maintenance: after any random interleaving of inserts and deletes, the
//! overlay-carrying structure must answer every `VertexQuery` identically to
//! a fresh `StructureD::build` on the final graph (where the final graph is
//! buildable on the base tree) and to an independent brute-force model
//! (always). Deeper runs: set `PROPTEST_CASES` and/or run the `--ignored`
//! stress targets.

use pardfs::graph::updates::{random_update_sequence, UpdateMix};
use pardfs::graph::{generators, Graph, Update, Vertex};
use pardfs::query::{EdgeHit, QueryOracle, StructureD, VertexQuery};
use pardfs::seq::augment::AugmentedGraph;
use pardfs::seq::static_dfs::static_dfs;
use pardfs::tree::{TreeIndex, NO_VERTEX};
use pardfs::{
    Backend, DfsMaintainer, DynamicDfs, FaultTolerantDfs, IndexPolicy, MaintainerBuilder,
    RebuildPolicy, Strategy, StreamingDynamicDfs,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Strategy: the seed fully determines the graph and the update sequence, so
/// shrinking stays meaningful and failures are reproducible from the seed.
fn graph_and_updates(
    seed: u64,
    n: usize,
    extra_edges: usize,
    updates: usize,
) -> (Graph, Vec<pardfs::Update>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = (n - 1 + extra_edges).min(n * (n - 1) / 2);
    let g = generators::random_connected_gnm(n, m, &mut rng);
    let ups = random_update_sequence(&g, updates, &UpdateMix::default(), &mut rng);
    (g, ups)
}

/// Build (augmented graph, base tree index, D) for a fresh random connected
/// graph — the starting point of every differential run.
fn build_base(seed: u64, n: usize, extra_edges: usize) -> (Graph, TreeIndex, StructureD) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = (n - 1 + extra_edges).min(n * (n - 1) / 2);
    let g = generators::random_connected_gnm(n, m, &mut rng);
    let aug = AugmentedGraph::new(&g);
    let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
    let d = StructureD::build(aug.graph(), idx.clone());
    (aug.graph().clone(), idx, d)
}

/// A random ancestor–descendant pair of the base tree (either orientation).
fn random_tree_path(idx: &TreeIndex, rng: &mut impl Rng) -> (Vertex, Vertex) {
    let verts = idx.pre_order_vertices();
    let a = verts[rng.gen_range(0..verts.len())];
    let b = idx.ancestor_at_level(a, rng.gen_range(0..=idx.level(a)));
    if rng.gen_bool(0.5) {
        (a, b)
    } else {
        (b, a)
    }
}

/// Independent brute-force model of the *current* edge set: base graph plus
/// net overlay records (`extra` inserted, `removed` deleted, `dead` masked).
/// Mirrors the query semantics of [`VertexQuery`] with O(n) scans.
fn brute_force_query(
    g: &Graph,
    idx: &TreeIndex,
    extra: &[(Vertex, Vertex)],
    removed: &[(Vertex, Vertex)],
    dead: &[Vertex],
    q: VertexQuery,
) -> Option<EdgeHit> {
    if dead.contains(&q.w) {
        return None;
    }
    let single_new = q.near == q.far && !idx.contains(q.near);
    let on_path = |z: Vertex| {
        idx.contains(z)
            && idx.contains(q.near)
            && idx.contains(q.far)
            && ((idx.is_ancestor(q.near, z) && idx.is_ancestor(z, q.far))
                || (idx.is_ancestor(q.far, z) && idx.is_ancestor(z, q.near)))
    };
    let mut nbrs: Vec<Vertex> = if (q.w as usize) < g.capacity() {
        g.neighbors(q.w).to_vec()
    } else {
        Vec::new()
    };
    for &(a, b) in extra {
        if a == q.w {
            nbrs.push(b);
        }
        if b == q.w {
            nbrs.push(a);
        }
    }
    nbrs.retain(|&z| {
        !removed.contains(&(q.w.min(z), q.w.max(z)))
            && !dead.contains(&z)
            && if single_new { z == q.near } else { on_path(z) }
    });
    let near_level = if idx.contains(q.near) {
        idx.level(q.near)
    } else {
        0
    };
    nbrs.into_iter()
        .map(|z| {
            let rank = if single_new {
                0
            } else {
                idx.level(z).abs_diff(near_level)
            };
            (rank, z)
        })
        .min()
        .map(|(rank, z)| EdgeHit {
            from: q.w,
            on_path: z,
            rank_from_near: rank,
        })
}

fn remove_pair(list: &mut Vec<(Vertex, Vertex)>, key: (Vertex, Vertex)) -> bool {
    if let Some(pos) = list.iter().position(|&p| p == key) {
        list.swap_remove(pos);
        true
    } else {
        false
    }
}

/// Drive one differential run with arbitrary interleavings (cross-edge
/// inserts, deletes of any non-pseudo edge, vertex insert/delete,
/// re-insertions that cancel deletions) and compare `D` against the
/// brute-force model on `queries_per_step` random queries after every step.
fn differential_overlay_run(seed: u64, n: usize, extra_edges: usize, steps: usize) {
    let (g, idx, mut d) = build_base(seed, n, extra_edges);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1FF);
    let proot = idx.root();

    // Net overlay model, maintained with the same cancellation rules the
    // overlay documents (but as flat lists, not sorted windows).
    let mut extra: Vec<(Vertex, Vertex)> = Vec::new();
    let mut removed: Vec<(Vertex, Vertex)> = Vec::new();
    let mut dead: Vec<Vertex> = Vec::new();
    let mut new_vertices: Vec<Vertex> = Vec::new();
    let mut next_id = g.capacity() as Vertex;

    let cap = g.capacity() as Vertex;
    let live_pairs = |rng: &mut ChaCha8Rng| {
        let u = rng.gen_range(1..cap);
        let v = rng.gen_range(1..cap);
        (u, v)
    };

    for step in 0..steps {
        match rng.gen_range(0..10) {
            // Insert an edge (possibly a cross edge, possibly cancelling an
            // earlier deletion). Skipped when the edge is currently present —
            // the overlay's contract, like the update vocabulary's, is that
            // inserted edges do not already exist.
            0..=3 => {
                let (u, v) = live_pairs(&mut rng);
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                let present = (g.has_edge(u, v) && !removed.contains(&key)) || extra.contains(&key);
                if present {
                    continue;
                }
                d.note_insert_edge(u, v);
                if !remove_pair(&mut removed, key) {
                    extra.push(key);
                }
            }
            // Delete a currently present edge — base or overlay-inserted —
            // but never a pseudo edge.
            4..=7 => {
                let choice = generators::sample_edges(&g, 1, &mut rng)
                    .into_iter()
                    .map(|(a, b)| (a.min(b), a.max(b)))
                    .find(|&(a, b)| a != proot && b != proot && !removed.contains(&(a, b)))
                    .or_else(|| extra.first().copied());
                if let Some((u, v)) = choice {
                    d.note_delete_edge(u, v);
                    if !remove_pair(&mut extra, (u, v)) {
                        removed.push((u, v));
                    }
                }
            }
            // Insert a fresh vertex with a few incident edges.
            8 => {
                let nv = next_id;
                next_id += 1;
                let k = rng.gen_range(1..4);
                let nbrs: Vec<Vertex> = (0..k).map(|_| rng.gen_range(1..cap)).collect();
                d.note_insert_vertex(nv, &nbrs);
                new_vertices.push(nv);
                for &u in &nbrs {
                    let key = (nv.min(u), nv.max(u));
                    if !extra.contains(&key) {
                        extra.push(key);
                    }
                }
            }
            // Delete a vertex (base or inserted).
            _ => {
                let v = if !new_vertices.is_empty() && rng.gen_bool(0.3) {
                    new_vertices[rng.gen_range(0..new_vertices.len())]
                } else {
                    rng.gen_range(1..cap)
                };
                d.note_delete_vertex(v);
                if !dead.contains(&v) {
                    dead.push(v);
                }
            }
        }

        // Differential check: 20 random queries per step, mixing tree paths
        // with queries targeting inserted vertices.
        for _ in 0..20 {
            let w = if !new_vertices.is_empty() && rng.gen_bool(0.2) {
                new_vertices[rng.gen_range(0..new_vertices.len())]
            } else {
                rng.gen_range(0..cap)
            };
            let (near, far) = if !new_vertices.is_empty() && rng.gen_bool(0.2) {
                let nv = new_vertices[rng.gen_range(0..new_vertices.len())];
                (nv, nv)
            } else {
                random_tree_path(&idx, &mut rng)
            };
            let q = VertexQuery::new(w, near, far);
            let got = d.query_vertex(q).map(|h| h.rank_from_near);
            let want =
                brute_force_query(&g, &idx, &extra, &removed, &dead, q).map(|h| h.rank_from_near);
            assert_eq!(
                got, want,
                "seed {seed}, step {step}: query {q:?} diverged from the model"
            );
        }
    }
}

/// Drive one differential run restricted to updates that keep the final
/// graph buildable on the base tree (back-edge inserts, arbitrary non-pseudo
/// edge deletes), and compare the overlay-carrying `D` against a **fresh
/// `StructureD::build` on the final graph** query-for-query.
fn differential_fresh_rebuild_run(seed: u64, n: usize, extra_edges: usize, steps: usize) {
    let (g, idx, mut d) = build_base(seed, n, extra_edges);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF2E5);
    let proot = idx.root();
    let mut mirror = g.clone();

    for _ in 0..steps {
        if rng.gen_bool(0.5) {
            // Insert a back edge of the base tree (below the pseudo root).
            let verts = idx.pre_order_vertices();
            let a = verts[rng.gen_range(0..verts.len())];
            if idx.level(a) < 2 {
                continue;
            }
            let anc = idx.ancestor_at_level(a, rng.gen_range(1..idx.level(a)));
            if anc == proot || mirror.has_edge(a, anc) {
                continue;
            }
            d.note_insert_edge(a, anc);
            mirror.apply(&Update::InsertEdge(a, anc));
        } else {
            // Delete any current non-pseudo edge (tree edges included).
            if let Some((u, v)) = generators::sample_edges(&mirror, 1, &mut rng)
                .into_iter()
                .find(|&(a, b)| a != proot && b != proot)
            {
                d.note_delete_edge(u, v);
                mirror.apply(&Update::DeleteEdge(u, v));
            }
        }
    }

    let fresh = StructureD::build(&mirror, idx.clone());
    for _ in 0..150 {
        let w = rng.gen_range(0..g.capacity() as Vertex);
        let (near, far) = random_tree_path(&idx, &mut rng);
        let q = VertexQuery::new(w, near, far);
        let incremental = d.query_vertex(q).map(|h| h.rank_from_near);
        let rebuilt = fresh.query_vertex(q).map(|h| h.rank_from_near);
        assert_eq!(
            incremental, rebuilt,
            "seed {seed}: incremental D diverged from a fresh build on {q:?}"
        );
    }
}

/// Assert that a (possibly delta-patched) `TreeIndex` answers every
/// parent / LCA / level-ancestor / pre-post / size / children query
/// identically to a fresh `from_parent_slice` build on the same parent
/// array — same raw numbers, not merely isomorphic answers.
fn assert_index_matches_fresh_build(idx: &TreeIndex, ctx: &str) {
    let mut parent = vec![NO_VERTEX; idx.capacity()];
    for &v in idx.pre_order_vertices() {
        parent[v as usize] = idx.parent(v).unwrap_or(v);
    }
    let fresh = TreeIndex::from_parent_slice(&parent, idx.root());
    assert_eq!(idx.num_vertices(), fresh.num_vertices(), "{ctx}: n");
    assert_eq!(
        idx.pre_order_vertices(),
        fresh.pre_order_vertices(),
        "{ctx}: pre-order sequence"
    );
    assert_eq!(
        idx.post_order_vertices(),
        fresh.post_order_vertices(),
        "{ctx}: post-order sequence"
    );
    for v in 0..idx.capacity() as Vertex {
        assert_eq!(idx.contains(v), fresh.contains(v), "{ctx}: contains({v})");
        if !idx.contains(v) {
            continue;
        }
        assert_eq!(idx.pre(v), fresh.pre(v), "{ctx}: pre({v})");
        assert_eq!(idx.post(v), fresh.post(v), "{ctx}: post({v})");
        assert_eq!(idx.level(v), fresh.level(v), "{ctx}: level({v})");
        assert_eq!(idx.size(v), fresh.size(v), "{ctx}: size({v})");
        assert_eq!(idx.parent(v), fresh.parent(v), "{ctx}: parent({v})");
        assert_eq!(idx.children(v), fresh.children(v), "{ctx}: children({v})");
    }
    let verts = fresh.pre_order_vertices();
    for (i, &u) in verts.iter().enumerate().step_by(3) {
        for &v in verts.iter().skip(i % 2).step_by(2) {
            assert_eq!(idx.lca(u, v), fresh.lca(u, v), "{ctx}: lca({u},{v})");
        }
        for l in 0..=fresh.level(u) {
            assert_eq!(
                idx.ancestor_at_level(u, l),
                fresh.ancestor_at_level(u, l),
                "{ctx}: ancestor_at_level({u},{l})"
            );
        }
    }
}

/// Drive one backend through a mixed update sequence (vertex churn included)
/// and check the maintained — delta-patched — index against a fresh build
/// after every update.
fn patched_index_differential_run(
    backend: Backend,
    policy: IndexPolicy,
    g: &Graph,
    updates: &[Update],
) {
    let mut dfs = MaintainerBuilder::new(backend)
        .index_policy(policy)
        .build(g);
    for (i, u) in updates.iter().enumerate() {
        dfs.apply_update(u);
        let ctx = format!(
            "{} under {policy:?}, update {i} ({u:?})",
            dfs.backend_name()
        );
        assert_index_matches_fresh_build(dfs.tree(), &ctx);
        dfs.check().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn patched_index_is_identical_to_fresh_builds_on_every_backend(
        seed in any::<u64>(),
        n in 5usize..28,
        extra in 0usize..40,
    ) {
        // The acceptance property of the delta-patched indexing layer:
        // after arbitrary insert/delete interleavings (vertex churn
        // included — those updates exercise the fallback), the patched
        // TreeIndex answers every parent/LCA/level-ancestor/pre-post query
        // identically to a fresh `from_parent_slice` build, for all five
        // backends, under both the always-splice and the thresholded policy.
        let (g, updates) = graph_and_updates(seed, n, extra, 10);
        for backend in Backend::all_default() {
            patched_index_differential_run(backend, IndexPolicy::PatchAlways, &g, &updates);
            patched_index_differential_run(backend, IndexPolicy::default(), &g, &updates);
        }
    }

    #[test]
    fn dynamic_dfs_is_always_a_dfs_tree(
        seed in any::<u64>(),
        n in 5usize..40,
        extra in 0usize..60,
        strategy_phased in any::<bool>(),
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, 15);
        let strategy = if strategy_phased { Strategy::Phased } else { Strategy::Simple };
        let mut dfs = DynamicDfs::with_strategy(&g, strategy);
        for u in &updates {
            dfs.apply_update(u);
            prop_assert!(dfs.check().is_ok(), "{:?} after {u:?}: {:?}", strategy, dfs.check());
        }
    }

    #[test]
    fn streaming_dfs_is_always_a_dfs_tree(
        seed in any::<u64>(),
        n in 5usize..30,
        extra in 0usize..40,
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, 10);
        let mut dfs = StreamingDynamicDfs::new(&g);
        for u in &updates {
            dfs.apply_update(u);
            prop_assert!(dfs.check().is_ok(), "after {u:?}: {:?}", dfs.check());
        }
    }

    #[test]
    fn fault_tolerant_batches_are_always_dfs_trees(
        seed in any::<u64>(),
        n in 5usize..30,
        extra in 0usize..40,
        k in 1usize..6,
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, k);
        let mut ft = FaultTolerantDfs::new(&g);
        let result = ft.tree_after(&updates);
        prop_assert!(result.check().is_ok(), "{:?}", result.check());
        // A second, different batch from the same preprocessed structure.
        let (_, updates2) = graph_and_updates(seed.wrapping_add(1), n, extra, k);
        let result2 = ft.tree_after(&updates2);
        prop_assert!(result2.check().is_ok(), "{:?}", result2.check());
    }

    #[test]
    fn structure_d_agrees_with_brute_force(
        seed in any::<u64>(),
        n in 5usize..50,
        extra in 0usize..80,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = generators::random_connected_gnm(n, m, &mut rng);
        let aug = AugmentedGraph::new(&g);
        let idx = TreeIndex::build(&static_dfs(aug.graph(), aug.pseudo_root()));
        let d = StructureD::build(aug.graph(), idx.clone());
        let verts = idx.pre_order_vertices();
        for _ in 0..50 {
            let w = verts[rng.gen_range(0..verts.len())];
            let a = verts[rng.gen_range(0..verts.len())];
            let anc = idx.ancestor_at_level(a, rng.gen_range(0..=idx.level(a)));
            let (near, far) = if rng.gen_bool(0.5) { (a, anc) } else { (anc, a) };
            let got = d.answer_batch(&[VertexQuery::new(w, near, far)])[0];
            // Brute force over the augmented graph's adjacency.
            let expected = aug
                .graph()
                .neighbors(w)
                .iter()
                .copied()
                .filter(|&z| {
                    (idx.is_ancestor(near, z) && idx.is_ancestor(z, far))
                        || (idx.is_ancestor(far, z) && idx.is_ancestor(z, near))
                })
                .map(|z| idx.level(z).abs_diff(idx.level(near)))
                .min();
            prop_assert_eq!(got.map(|h| h.rank_from_near), expected);
        }
    }

    #[test]
    fn incremental_structure_d_matches_brute_force_model(
        seed in any::<u64>(),
        n in 8usize..40,
        extra in 0usize..60,
    ) {
        // Arbitrary interleavings: cross-edge inserts, deletes (incl. tree
        // edges), vertex churn, cancellations — checked against an
        // independent O(n)-scan model after every step.
        differential_overlay_run(seed, n, extra, 25);
    }

    #[test]
    fn incremental_structure_d_matches_fresh_rebuild(
        seed in any::<u64>(),
        n in 8usize..40,
        extra in 0usize..60,
    ) {
        // Inserts/deletes that keep the final graph buildable on the base
        // tree: the overlay-carrying D must answer identically to a fresh
        // StructureD::build on the final graph.
        differential_fresh_rebuild_run(seed, n, extra, 30);
    }

    #[test]
    fn incremental_dynamic_dfs_matches_rebuild_every_update(
        seed in any::<u64>(),
        n in 5usize..35,
        extra in 0usize..50,
    ) {
        // Maintainer-level differential with deletes enabled: the same mixed
        // sequence through a never-rebuilding and an always-rebuilding
        // maintainer must stay valid and component-identical at every step.
        let (g, updates) = graph_and_updates(seed, n, extra, 15);
        let mut inc = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::Never);
        let mut full = DynamicDfs::with_config(&g, Strategy::Phased, RebuildPolicy::EveryUpdate);
        for u in &updates {
            inc.apply_update(u);
            full.apply_update(u);
            prop_assert!(inc.check().is_ok(), "incremental after {u:?}: {:?}", inc.check());
            prop_assert!(full.check().is_ok());
            prop_assert_eq!(inc.forest_roots().len(), full.forest_roots().len());
        }
        prop_assert_eq!(inc.policy_stats().rebuilds, 0);
    }

    #[test]
    fn fault_tolerant_maintainer_absorbs_each_update_once(
        seed in any::<u64>(),
        n in 5usize..30,
        extra in 0usize..40,
        k in 1usize..8,
    ) {
        let (g, updates) = graph_and_updates(seed, n, extra, k);
        let mut ft = FaultTolerantDfs::new(&g);
        for u in &updates {
            DfsMaintainer::apply_update(&mut ft, u);
            prop_assert!(DfsMaintainer::check(&ft).is_ok());
        }
        prop_assert_eq!(ft.absorptions(), updates.len() as u64);
    }
}

/// Deep sweeps of the differential harnesses — too slow for tier-1, run
/// explicitly (`cargo test --release --test property -- --ignored`, the CI
/// property-stress job) for coverage far beyond the default 24 cases.
#[test]
#[ignore = "stress target: run with `--ignored` (CI property-stress job)"]
fn stress_differential_overlay_deep() {
    for trial in 0..50u64 {
        let seed = trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        differential_overlay_run(
            seed,
            8 + (trial as usize * 3) % 48,
            (trial as usize * 7) % 96,
            40,
        );
    }
}

#[test]
#[ignore = "stress target: run with `--ignored` (CI property-stress job)"]
fn stress_differential_fresh_rebuild_deep() {
    for trial in 0..50u64 {
        let seed = trial.wrapping_mul(0xD1B5_4A32_D192_ED03);
        differential_fresh_rebuild_run(
            seed,
            8 + (trial as usize * 5) % 48,
            (trial as usize * 11) % 96,
            60,
        );
    }
}

#[test]
#[ignore = "stress target: run with `--ignored` (CI property-stress job)"]
fn stress_patched_index_differential_deep() {
    for trial in 0..12u64 {
        let seed = trial.wrapping_mul(0xA076_1D64_78BD_642F);
        let (g, updates) = graph_and_updates(
            seed,
            8 + (trial as usize * 5) % 40,
            (trial as usize * 9) % 80,
            25,
        );
        for backend in Backend::all_default() {
            patched_index_differential_run(backend, IndexPolicy::PatchAlways, &g, &updates);
        }
    }
}

#[test]
fn patched_index_differential_smoke() {
    // A fixed case through every backend so a patch-path regression fails
    // deterministically even without the proptest harness.
    let (g, updates) = graph_and_updates(11, 18, 25, 12);
    for backend in Backend::all_default() {
        patched_index_differential_run(backend, IndexPolicy::PatchAlways, &g, &updates);
    }
}

#[test]
fn proptest_regression_smoke() {
    // A fixed case exercising all maintainers quickly, so failures in the
    // proptest harness configuration itself are caught deterministically.
    let (g, updates) = graph_and_updates(7, 20, 20, 10);
    let mut dfs = DynamicDfs::new(&g);
    for u in &updates {
        dfs.apply_update(u);
    }
    dfs.check().unwrap();
}
