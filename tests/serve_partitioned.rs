//! Partitioned-vs-unsharded differential suite: the determinism contract of
//! `docs/SHARDING.md`, pinned on the frozen corpus.
//!
//! Every checked-in trace under `tests/corpus/` is replayed through a
//! [`PartitionedRouter`] at k ∈ {2, 3} shards on every backend, committing
//! one router epoch per recorded update batch, and **every epoch's**
//! assembled-forest fingerprint — not just the final one — must equal a
//! single-threaded unsharded replay of the same prefix on the same backend.
//! The `partition-storm` trace starts with disjoint clusters and bridges
//! them in waves, so the suite provably exercises cross-shard component
//! merges (asserted via the router's migration counter), and the concurrent
//! test drives the same traces through
//! [`ConcurrentScenarioRunner::run_partitioned`] with the torn-read census
//! at zero tolerance.

use pardfs::scenario::TraceBatch;
use pardfs::{
    Backend, ConcurrentScenarioRunner, DfsMaintainer, ForestQuery, MaintainerBuilder, Trace, Update,
};
use std::path::PathBuf;

fn corpus_traces() -> Vec<(String, Trace)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "trace"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable trace");
            let trace =
                Trace::parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
            (name, trace)
        })
        .collect()
}

fn update_batches(trace: &Trace) -> Vec<&[Update]> {
    trace
        .phases
        .iter()
        .flat_map(|p| &p.batches)
        .filter_map(|b| match b {
            TraceBatch::Updates(us) => Some(us.as_slice()),
            TraceBatch::Queries(_) => None,
        })
        .collect()
}

#[test]
fn partitioned_replay_matches_unsharded_per_epoch_on_every_corpus_trace() {
    let traces = corpus_traces();
    let mut storm_migrations = 0u64;
    for (name, trace) in &traces {
        let batches = update_batches(trace);
        let graph = trace.initial_graph();
        for backend in Backend::all_default() {
            for k in [2usize, 3] {
                let builder = MaintainerBuilder::new(backend).partitioned_shards(k);
                let mut reference: Box<dyn DfsMaintainer> = builder.build(&graph);
                let mut router = builder.serve_partitioned(&graph);
                let label = format!("{name}/{}/k={k}", reference.backend_name());
                assert_eq!(
                    router.read_handle().view().fingerprint(),
                    reference.tree().fingerprint(),
                    "{label}: initial assembled forest differs"
                );
                for (i, batch) in batches.iter().enumerate() {
                    reference.apply_batch(batch);
                    let record = router
                        .commit(batch)
                        .expect("corpus update batches are non-empty");
                    assert_eq!(
                        record.fingerprint,
                        reference.tree().fingerprint(),
                        "{label}: assembled forest diverged at epoch {} (batch {i})",
                        record.epoch
                    );
                    assert_eq!(record.num_vertices, reference.num_vertices(), "{label}");
                    assert_eq!(record.num_edges, reference.num_edges(), "{label}");
                }
                // Final state: full query surface agrees, every shard's
                // tree is a valid DFS tree of its restriction.
                let view = router.read_handle().view();
                assert_eq!(view.forest_roots(), reference.forest_roots(), "{label}");
                for v in 0..graph.capacity() as u32 + 8 {
                    assert_eq!(
                        view.forest_parent(v),
                        reference.forest_parent(v),
                        "{label}: forest_parent({v})"
                    );
                }
                for server in router.servers() {
                    server
                        .maintainer()
                        .check()
                        .unwrap_or_else(|e| panic!("{label}: invalid shard tree: {e}"));
                }
                if name.starts_with("partition-storm") {
                    storm_migrations += router.stats().migrations;
                }
            }
        }
    }
    assert!(
        storm_migrations > 0,
        "the partition-storm trace must force cross-shard component merges"
    );
}

#[test]
fn concurrent_partitioned_runs_are_torn_free_and_match_the_unsharded_replay() {
    for (name, trace) in corpus_traces() {
        let graph = trace.initial_graph();
        // One backend suffices here — per-epoch equivalence across all five
        // is pinned above; this test is about the concurrent read path.
        let builder = MaintainerBuilder::new(Backend::Sequential).partitioned_shards(2);
        let mut reference = builder.build(&graph);
        for batch in update_batches(&trace) {
            reference.apply_batch(batch);
        }
        let runner = ConcurrentScenarioRunner::new(&trace, 3);
        let (router, outcome) = runner.run_partitioned(builder.serve_partitioned(&graph));
        assert_eq!(outcome.commit_error, None, "{name}");
        assert_eq!(outcome.reader_panics, 0, "{name}");
        assert_eq!(
            outcome.torn_snapshots, 0,
            "{name}: a reader saw a torn view"
        );
        assert_eq!(
            outcome.final_fingerprint,
            reference.tree().fingerprint(),
            "{name}: concurrent partitioned replay diverged"
        );
        assert_eq!(
            outcome.updates_applied as usize,
            trace.num_updates(),
            "{name}: dropped updates"
        );
        assert_eq!(
            outcome.epochs.len(),
            update_batches(&trace).len() + 1,
            "{name}: epoch log is epoch 0 plus one per batch"
        );
        assert!(
            outcome.queries_answered > 0,
            "{name}: readers answered nothing"
        );
        // Routed writes: every shard applied no more than the total, and
        // together they applied at least every update once.
        let stats = router.stats();
        assert_eq!(stats.updates_routed as usize, trace.num_updates(), "{name}");
        assert!(
            stats.total_applied() >= stats.updates_routed,
            "{name}: applied counts lost updates"
        );
    }
}
